"""Bounded, thread-safe priority queue for mining jobs.

The queue is the service's backpressure point: depth is bounded, and a
producer that outruns the workers either blocks (optionally with a
timeout) or gets an immediate :class:`QueueFull` — the in-process
analogue of a 429.  Lower ``priority`` numbers are served first; ties
are FIFO via a monotonic sequence number so equal-priority jobs never
starve each other.
"""

from __future__ import annotations

import heapq
import threading
from typing import Optional

from repro import obs


class QueueFull(RuntimeError):
    """The queue is at capacity and the caller declined to wait."""


class QueueClosed(RuntimeError):
    """The queue was closed and drained; no more items will arrive."""


class JobQueue:
    """Heap-backed priority queue with bounded depth and clean shutdown."""

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._heap: list[tuple[int, int, object]] = []
        self._seq = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self.max_depth_seen = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------
    def put(
        self,
        item: object,
        priority: int = 0,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> None:
        """Enqueue ``item``; apply backpressure when at capacity."""
        with self._not_full:
            if self._closed:
                raise QueueClosed("cannot enqueue on a closed queue")
            if len(self._heap) >= self.maxsize:
                if not block:
                    obs.inc("service.queue.rejected")
                    raise QueueFull(
                        f"queue at capacity ({self.maxsize} jobs)"
                    )
                deadline_ok = self._not_full.wait_for(
                    lambda: self._closed or len(self._heap) < self.maxsize,
                    timeout=timeout,
                )
                if self._closed:
                    raise QueueClosed("queue closed while waiting for space")
                if not deadline_ok:
                    obs.inc("service.queue.rejected")
                    raise QueueFull(
                        f"queue stayed at capacity ({self.maxsize} jobs) "
                        f"for {timeout}s"
                    )
            self._seq += 1
            heapq.heappush(self._heap, (priority, self._seq, item))
            depth = len(self._heap)
            self.max_depth_seen = max(self.max_depth_seen, depth)
            obs.set_gauge("service.queue.depth", depth)
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> object:
        """Dequeue the highest-priority item, blocking until one exists.

        Raises :class:`QueueClosed` once the queue is closed *and* empty
        — the worker-pool shutdown signal.
        """
        with self._not_empty:
            ready = self._not_empty.wait_for(
                lambda: self._closed or self._heap, timeout=timeout
            )
            if self._heap:
                _priority, _seq, item = heapq.heappop(self._heap)
                obs.set_gauge("service.queue.depth", len(self._heap))
                self._not_full.notify()
                return item
            if self._closed:
                raise QueueClosed("queue closed and drained")
            if not ready:
                raise TimeoutError(f"no job arrived within {timeout}s")
            raise QueueClosed("queue closed and drained")  # pragma: no cover

    def close(self) -> None:
        """Stop accepting items; pending items can still be drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
