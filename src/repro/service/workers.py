"""Worker pool and retry/backoff machinery.

Workers are plain threads draining the :class:`~repro.service.queue.
JobQueue`; the execution callback (owned by the service facade) does the
actual mining.  Retrying lives here: LLM backends fail transiently —
timeouts, 429s, connection resets, modelled by
:class:`repro.llm.faults.TransientLLMError` — and a grid run must
degrade to a delayed cell, not a dead process.  Each attempt gets
exponentially more breathing room, and a cooperative per-job timeout
bounds how long a cell may churn before it is declared FAILED.

Both the clock and the sleep function are injectable so tests drive
backoff schedules deterministically in zero wall time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.llm.faults import TransientLLMError
from repro.service.queue import JobQueue, QueueClosed


class RetriesExhaustedError(RuntimeError):
    """Every allowed attempt failed transiently."""

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"all {attempts} attempts failed transiently; "
            f"last error: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


class JobTimeoutError(RuntimeError):
    """The job's cooperative deadline passed between attempts."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base_delay * multiplier**n``, capped."""

    max_retries: int = 3             # retries *beyond* the first attempt
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    timeout_seconds: Optional[float] = None   # cooperative per-job budget

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based)."""
        return min(
            self.max_delay, self.base_delay * self.multiplier ** retry_index
        )


def call_with_retry(
    fn: Callable[[], object],
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (TransientLLMError,),
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
) -> object:
    """Call ``fn`` with exponential-backoff retries on transient errors.

    Non-retryable exceptions propagate immediately.  The cooperative
    timeout is checked between attempts (the simulated pipelines are
    synchronous, so mid-call preemption is neither possible nor needed):
    when the next backoff would land past the deadline, the job fails
    with :class:`JobTimeoutError` rather than sleeping uselessly.
    """
    deadline = (
        clock() + policy.timeout_seconds
        if policy.timeout_seconds is not None else None
    )
    attempts = 0
    while True:
        attempts += 1
        try:
            return fn()
        except retryable as error:
            retry_index = attempts - 1
            if retry_index >= policy.max_retries:
                raise RetriesExhaustedError(attempts, error) from error
            pause = policy.delay(retry_index)
            if deadline is not None and clock() + pause > deadline:
                raise JobTimeoutError(
                    f"deadline of {policy.timeout_seconds}s would pass "
                    f"during backoff after {attempts} attempts"
                ) from error
            if on_retry is not None:
                on_retry(attempts, pause, error)
            sleep(pause)


class WorkerPool:
    """N daemon threads draining a queue through one execution callback."""

    def __init__(
        self,
        queue: JobQueue,
        execute: Callable[[object], None],
        workers: int = 2,
        name: str = "miner",
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.queue = queue
        self.execute = execute
        self.worker_count = workers
        self.name = name
        self._threads: list[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for index in range(self.worker_count):
            thread = threading.Thread(
                target=self._loop,
                name=f"{self.name}-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _loop(self) -> None:
        while True:
            try:
                job = self.queue.get()
            except QueueClosed:
                return
            # the execute callback owns all job-level error handling; a
            # worker thread must survive anything a job throws at it
            try:
                self.execute(job)
            except Exception as error:  # pragma: no cover - defensive
                obs.inc(
                    "service.worker_crashes",
                    exc_type=type(error).__name__,
                )

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the workers to exit (call after queue.close())."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(remaining)

    @property
    def alive(self) -> int:
        return sum(1 for thread in self._threads if thread.is_alive())
