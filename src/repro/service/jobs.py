"""Job model for the mining service.

A *job* is one grid cell (dataset × model × method × prompt mode) plus
the full pipeline configuration needed to mine it.  Its identity is
content-addressed: the id is a digest over

* a **graph fingerprint** — every node and edge of the dataset's graph,
  in deterministic order, so regenerating the same dataset yields the
  same id and a different graph is a guaranteed different id;
* a **code fingerprint** — the source text of the modules that determine
  a mining run's output, so upgrading the pipeline code invalidates old
  cache entries instead of silently serving stale results;
* the **pipeline configuration** — every knob that changes the produced
  :class:`~repro.mining.result.MiningRun`, canonically serialised.

The same triple therefore always maps to the same job id, across
processes and machines — which is exactly the key the on-disk result
cache is addressed by.
"""

from __future__ import annotations

import enum
import hashlib
import inspect
import json
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.graph.store import PropertyGraph
from repro.mining.persistence import FORMAT_VERSION


class JobState(enum.Enum):
    """Lifecycle of a job: QUEUED → RUNNING → DONE/FAILED/CANCELLED."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One schedulable grid cell with its full pipeline configuration."""

    dataset: str
    model: str
    method: str                      # 'sliding_window' | 'rag'
    prompt_mode: str                 # 'zero_shot' | 'few_shot'
    base_seed: int = 0
    window_size: int = 8000
    overlap: int = 500
    rag_chunk_tokens: int = 512
    rag_top_k: int = 16

    def cell(self) -> tuple[str, str, str, str]:
        return (
            self.dataset.lower(), self.model.lower(),
            self.method, self.prompt_mode,
        )

    def config_dict(self) -> dict[str, object]:
        """Every knob that affects the mined result, canonically keyed."""
        return {
            "dataset": self.dataset.lower(),
            "model": self.model.lower(),
            "method": self.method,
            "prompt_mode": self.prompt_mode,
            "base_seed": self.base_seed,
            "window_size": self.window_size,
            "overlap": self.overlap,
            "rag_chunk_tokens": self.rag_chunk_tokens,
            "rag_top_k": self.rag_top_k,
        }


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def graph_fingerprint(graph: PropertyGraph) -> str:
    """Content digest of a property graph.

    Nodes and edges are hashed in sorted-id order with their labels and
    sorted property maps, so the fingerprint is independent of insertion
    order and stable across processes.
    """
    digest = hashlib.sha256()
    digest.update(graph.name.encode("utf-8"))
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        record = (
            node.id,
            tuple(sorted(node.labels)),
            tuple(sorted((k, repr(v)) for k, v in node.properties.items())),
        )
        digest.update(repr(record).encode("utf-8"))
    for edge in sorted(graph.edges(), key=lambda e: e.id):
        record = (
            edge.id, edge.label, edge.src, edge.dst,
            tuple(sorted((k, repr(v)) for k, v in edge.properties.items())),
        )
        digest.update(repr(record).encode("utf-8"))
    return digest.hexdigest()


#: modules whose source determines a mining run's output — any change to
#: them must invalidate cached results
_CODE_FINGERPRINT_MODULES = (
    "repro.analysis.analyzer",
    "repro.analysis.canonical",
    "repro.analysis.dataflow",
    "repro.analysis.findings",
    "repro.analysis.satisfiability",
    "repro.analysis.typecheck",
    "repro.encoding.incident",
    "repro.encoding.windows",
    "repro.llm.faults",
    "repro.llm.induction",
    "repro.llm.profiles",
    "repro.llm.simulated",
    "repro.llm.timing",
    "repro.mining.pipeline",
    "repro.mining.ragpipe",
    "repro.mining.sliding",
    "repro.rag.retriever",
    "repro.rules.dedup",
    "repro.rules.nl",
    "repro.rules.translator",
)

_code_fingerprint_lock = threading.Lock()
_code_fingerprint_cache: dict[tuple[str, ...], str] = {}


def code_fingerprint(
    modules: tuple[str, ...] = _CODE_FINGERPRINT_MODULES,
) -> str:
    """Digest of the pipeline source code (cached per module set)."""
    with _code_fingerprint_lock:
        cached = _code_fingerprint_cache.get(modules)
        if cached is not None:
            return cached
    import importlib

    digest = hashlib.sha256()
    for name in modules:
        module = importlib.import_module(name)
        digest.update(name.encode("utf-8"))
        try:
            digest.update(inspect.getsource(module).encode("utf-8"))
        except (OSError, TypeError):  # frozen / sourceless installs
            digest.update(getattr(module, "__file__", name).encode("utf-8"))
    value = digest.hexdigest()
    with _code_fingerprint_lock:
        _code_fingerprint_cache[modules] = value
    return value


def cache_key(
    spec: JobSpec, graph_digest: str, code_digest: str | None = None
) -> str:
    """The content address of a job: config + graph + code + format."""
    payload = {
        "format_version": FORMAT_VERSION,
        "graph": graph_digest,
        "code": code_digest if code_digest is not None else code_fingerprint(),
        "config": spec.config_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
@dataclass
class Job:
    """A submitted grid cell and everything known about its execution."""

    spec: JobSpec
    job_id: str                      # == the result-cache content address
    priority: int = 0
    state: JobState = JobState.QUEUED
    attempts: int = 0                # mining attempts actually started
    retries: int = 0                 # attempts beyond the first
    error: Optional[str] = None
    result: object = None            # MiningRun once DONE
    cache_hit: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)
    #: the submitter's :class:`repro.obs.TraceContext`, captured at
    #: submit time so the worker thread re-parents the job's spans under
    #: the client's span tree instead of growing an orphan root
    trace_ctx: object = field(default=None, repr=False)
    #: caller-supplied attributes stamped onto the ``service.job`` span
    #: (the gateway worker passes its distributed trace id through here)
    trace_tags: dict = field(default_factory=dict, repr=False)

    @property
    def wait_seconds(self) -> float:
        """Queue wait: submission to first execution (0 for cache hits)."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float:
        """Execution wall time, excluding queue wait."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def snapshot(self) -> dict[str, object]:
        """A plain-dict view for status endpoints and the CLI."""
        return {
            "job_id": self.job_id,
            "cell": self.spec.cell(),
            "state": self.state.value,
            "priority": self.priority,
            "attempts": self.attempts,
            "retries": self.retries,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "wait_seconds": self.wait_seconds,
            "run_seconds": self.run_seconds,
        }
