"""repro.service — in-process mining job service.

The experiment grid as schedulable work: content-addressed jobs, a
bounded priority queue with backpressure, a worker pool with
retry/backoff around the LLM pipelines, and an on-disk result cache
layered on :mod:`repro.mining.persistence`.
"""

from repro.service.api import (
    JobFailedError,
    MiningService,
    ServiceDraining,
    UnknownJobError,
)
from repro.service.cache import CacheStats, ResultCache
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    cache_key,
    code_fingerprint,
    graph_fingerprint,
)
from repro.service.queue import JobQueue, QueueClosed, QueueFull
from repro.service.workers import (
    JobTimeoutError,
    RetriesExhaustedError,
    RetryPolicy,
    WorkerPool,
    call_with_retry,
)

__all__ = [
    "CacheStats",
    "Job",
    "JobFailedError",
    "JobQueue",
    "JobSpec",
    "JobState",
    "JobTimeoutError",
    "MiningService",
    "QueueClosed",
    "QueueFull",
    "ResultCache",
    "RetriesExhaustedError",
    "RetryPolicy",
    "ServiceDraining",
    "UnknownJobError",
    "WorkerPool",
    "cache_key",
    "call_with_retry",
    "code_fingerprint",
    "graph_fingerprint",
]
