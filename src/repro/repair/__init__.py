"""Rule-driven repair: compile violations into Cypher write queries."""

from repro.repair.engine import (
    QUARANTINE_KEY,
    RepairAction,
    RepairEngine,
    RepairPlan,
    RepairReport,
)

__all__ = [
    "QUARANTINE_KEY",
    "RepairAction",
    "RepairEngine",
    "RepairPlan",
    "RepairReport",
]
