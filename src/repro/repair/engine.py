"""Rule-driven repair: turn violations into Cypher write queries.

The pipeline's end product is a set of consistency rules with known
violations; the natural next step for a data steward is to *enforce*
them.  The :class:`RepairEngine` compiles each rule into bulk repair
queries using the Cypher write clauses (CREATE / SET / DELETE / REMOVE),
applies them, and re-scores the rule so the improvement is measurable.

Repair policies per rule kind:

==================  =================================================
Kind                Default repair
==================  =================================================
PROPERTY_EXISTS     SET the missing property to a configured default,
                    or quarantine when no default is given
EDGE_PROP_EXISTS    quarantine the relationship's source node
UNIQUENESS          quarantine every node in a colliding group
PRIMARY_KEY         quarantine colliding nodes within their scope
VALUE_DOMAIN        quarantine nodes with out-of-domain values
VALUE_FORMAT        quarantine nodes with malformed values
ENDPOINT            DELETE mistyped relationships
MANDATORY_EDGE      quarantine unconnected nodes
NO_SELF_LOOP        DELETE the self-loops
TEMPORAL_ORDER      DELETE causality-violating relationships
TEMPORAL_UNIQUE     quarantine the colliding endpoints
PATTERN             quarantine nodes whose two-hop closure is missing
==================  =================================================

"Quarantine" sets ``_quarantined = true`` on the offending element so a
human can review it — destructive deletes are reserved for structurally
impossible edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cypher.executor import execute
from repro.cypher.render import render_literal
from repro.graph.schema import GraphSchema
from repro.graph.store import PropertyGraph
from repro.metrics.definitions import RuleMetrics
from repro.metrics.evaluator import evaluate_rule
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.translator import RuleTranslator, UntranslatableRuleError

QUARANTINE_KEY = "_quarantined"


@dataclass(frozen=True)
class RepairAction:
    """One compiled repair step."""

    description: str
    query: str
    destructive: bool   # True when the action deletes elements


@dataclass
class RepairPlan:
    rule: ConsistencyRule
    actions: list[RepairAction] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.actions


@dataclass
class RepairReport:
    """What one applied plan did, with before/after scores."""

    rule: ConsistencyRule
    applied: list[RepairAction]
    stats: dict[str, int]
    metrics_before: Optional[RuleMetrics]
    metrics_after: Optional[RuleMetrics]

    @property
    def confidence_gain(self) -> float:
        if self.metrics_before is None or self.metrics_after is None:
            return 0.0
        return (self.metrics_after.confidence
                - self.metrics_before.confidence)


class RepairEngine:
    """Compiles and applies repairs for consistency rules."""

    def __init__(
        self,
        graph: PropertyGraph,
        schema: GraphSchema,
        defaults: dict[tuple[str, str], object] | None = None,
        allow_destructive: bool = True,
    ) -> None:
        self.graph = graph
        self.schema = schema
        self.defaults = defaults or {}
        self.allow_destructive = allow_destructive
        self.translator = RuleTranslator(schema)

    # ------------------------------------------------------------------
    def plan(self, rule: ConsistencyRule) -> RepairPlan:
        """Compile ``rule`` into repair actions (no side effects)."""
        handler = {
            RuleKind.PROPERTY_EXISTS: self._plan_property_exists,
            RuleKind.EDGE_PROP_EXISTS: self._plan_edge_prop_exists,
            RuleKind.UNIQUENESS: self._plan_uniqueness,
            RuleKind.PRIMARY_KEY: self._plan_primary_key,
            RuleKind.VALUE_DOMAIN: self._plan_value_rule,
            RuleKind.VALUE_FORMAT: self._plan_value_rule,
            RuleKind.ENDPOINT: self._plan_endpoint,
            RuleKind.MANDATORY_EDGE: self._plan_mandatory_edge,
            RuleKind.NO_SELF_LOOP: self._plan_no_self_loop,
            RuleKind.TEMPORAL_ORDER: self._plan_temporal_order,
            RuleKind.TEMPORAL_UNIQUE: self._plan_temporal_unique,
            RuleKind.PATTERN: self._plan_pattern,
        }.get(rule.kind)
        plan = RepairPlan(rule=rule)
        if handler is not None:
            try:
                plan.actions.extend(handler(rule))
            except (KeyError, IndexError, TypeError):
                pass
        if not self.allow_destructive:
            plan.actions = [
                action for action in plan.actions if not action.destructive
            ]
        return plan

    def apply(self, plan: RepairPlan) -> RepairReport:
        """Execute a plan's queries and re-score the rule."""
        metrics_before = self._score(plan.rule)
        stats: dict[str, int] = {}
        applied: list[RepairAction] = []
        for action in plan.actions:
            result = execute(self.graph, action.query)
            applied.append(action)
            for key, value in result.stats.items():
                stats[key] = stats.get(key, 0) + value
        metrics_after = self._score(plan.rule)
        return RepairReport(
            rule=plan.rule, applied=applied, stats=stats,
            metrics_before=metrics_before, metrics_after=metrics_after,
        )

    def repair(self, rule: ConsistencyRule) -> RepairReport:
        """plan + apply in one call."""
        return self.apply(self.plan(rule))

    def _score(self, rule: ConsistencyRule) -> Optional[RuleMetrics]:
        try:
            return evaluate_rule(self.graph, self.translator.translate(rule))
        except UntranslatableRuleError:
            return None

    # ------------------------------------------------------------------
    # per-kind planners
    # ------------------------------------------------------------------
    def _quarantine_nodes(self, pattern: str, where: str,
                          what: str) -> RepairAction:
        return RepairAction(
            description=f"quarantine {what}",
            query=(
                f"MATCH {pattern} WHERE {where} "
                f"SET n.{QUARANTINE_KEY} = true"
            ),
            destructive=False,
        )

    def _plan_property_exists(self, rule):
        actions = []
        for key in rule.properties:
            default = self.defaults.get((rule.label, key))
            if default is not None:
                actions.append(RepairAction(
                    description=(
                        f"set missing {rule.label}.{key} to the default"
                    ),
                    query=(
                        f"MATCH (n:{rule.label}) WHERE n.{key} IS NULL "
                        f"SET n.{key} = {render_literal(default)}"
                    ),
                    destructive=False,
                ))
            else:
                actions.append(self._quarantine_nodes(
                    f"(n:{rule.label})", f"n.{key} IS NULL",
                    f"{rule.label} nodes missing {key}",
                ))
        return actions

    def _plan_edge_prop_exists(self, rule):
        key = rule.properties[0]
        return [RepairAction(
            description=(
                f"quarantine sources of {rule.edge_label} edges "
                f"missing {key}"
            ),
            query=(
                f"MATCH (n)-[r:{rule.edge_label}]->() "
                f"WHERE r.{key} IS NULL "
                f"SET n.{QUARANTINE_KEY} = true"
            ),
            destructive=False,
        )]

    def _plan_uniqueness(self, rule):
        key = rule.properties[0]
        return [RepairAction(
            description=(
                f"quarantine {rule.label} nodes sharing a {key} value"
            ),
            query=(
                f"MATCH (n:{rule.label}) WHERE n.{key} IS NOT NULL "
                f"WITH n.{key} AS value, collect(n) AS group "
                "WHERE size(group) > 1 "
                "UNWIND group AS m "
                f"SET m.{QUARANTINE_KEY} = true"
            ),
            destructive=False,
        )]

    def _plan_primary_key(self, rule):
        key = rule.properties[0]
        src, dst = self.translator._oriented(
            rule.label, rule.scope_edge_label, rule.scope_label
        )
        if src == rule.label:
            pattern = (
                f"(m:{rule.label})-[:{rule.scope_edge_label}]->"
                f"(s:{rule.scope_label})"
            )
        else:
            pattern = (
                f"(m:{rule.label})<-[:{rule.scope_edge_label}]-"
                f"(s:{rule.scope_label})"
            )
        return [RepairAction(
            description=(
                f"quarantine {rule.label} nodes whose {key} collides "
                f"within a {rule.scope_label}"
            ),
            query=(
                f"MATCH {pattern} "
                f"WITH s, m.{key} AS value, collect(m) AS group "
                "WHERE size(group) > 1 "
                "UNWIND group AS n "
                f"SET n.{QUARANTINE_KEY} = true"
            ),
            destructive=False,
        )]

    def _plan_value_rule(self, rule):
        key = rule.properties[0]
        if rule.kind is RuleKind.VALUE_DOMAIN:
            values = ", ".join(
                render_literal(value) for value in rule.allowed_values
            )
            predicate = f"NOT n.{key} IN [{values}]"
            what = f"{rule.label} nodes with out-of-domain {key}"
        else:
            regex = render_literal(rule.pattern_regex)
            predicate = f"NOT n.{key} =~ {regex}"
            what = f"{rule.label} nodes with malformed {key}"
        return [self._quarantine_nodes(
            f"(n:{rule.label})",
            f"n.{key} IS NOT NULL AND {predicate}",
            what,
        )]

    def _plan_endpoint(self, rule):
        return [RepairAction(
            description=(
                f"delete {rule.edge_label} edges not connecting "
                f"{rule.src_label} to {rule.dst_label}"
            ),
            query=(
                f"MATCH (a)-[r:{rule.edge_label}]->(b) "
                f"WHERE NOT (a:{rule.src_label} AND b:{rule.dst_label}) "
                "DELETE r"
            ),
            destructive=True,
        )]

    def _plan_mandatory_edge(self, rule):
        if rule.src_label == rule.label:
            exists = (
                f"(n)-[:{rule.edge_label}]->(:{rule.dst_label})"
            )
        else:
            exists = (
                f"(n)<-[:{rule.edge_label}]-(:{rule.src_label})"
            )
        return [self._quarantine_nodes(
            f"(n:{rule.label})", f"NOT {exists}",
            f"{rule.label} nodes without a {rule.edge_label} edge",
        )]

    def _plan_no_self_loop(self, rule):
        label = f":{rule.label}" if rule.label else ""
        return [RepairAction(
            description=f"delete {rule.edge_label} self-loops",
            query=(
                f"MATCH (a{label})-[r:{rule.edge_label}]->(b{label}) "
                "WHERE a = b DELETE r"
            ),
            destructive=True,
        )]

    def _plan_temporal_order(self, rule):
        key = rule.time_property
        return [RepairAction(
            description=(
                f"delete {rule.edge_label} edges violating "
                f"{key} ordering"
            ),
            query=(
                f"MATCH (a:{rule.src_label})-[r:{rule.edge_label}]->"
                f"(b:{rule.dst_label}) "
                f"WHERE a.{key} IS NOT NULL AND b.{key} IS NOT NULL "
                f"AND a.{key} < b.{key} DELETE r"
            ),
            destructive=True,
        )]

    def _plan_temporal_unique(self, rule):
        key = rule.time_property
        src = f":{rule.src_label}" if rule.src_label else ""
        dst = f":{rule.dst_label}" if rule.dst_label else ""
        return [RepairAction(
            description=(
                f"quarantine endpoints of colliding {rule.edge_label} "
                f"edges (same {key})"
            ),
            query=(
                f"MATCH (a{src})-[r:{rule.edge_label}]->(b{dst}) "
                f"WHERE r.{key} IS NOT NULL "
                f"WITH a, b, r.{key} AS moment, collect(r) AS group "
                "WHERE size(group) > 1 "
                f"SET a.{QUARANTINE_KEY} = true"
            ),
            destructive=False,
        )]

    def _plan_pattern(self, rule):
        src1, _dst1 = self.translator._oriented(
            rule.label, rule.edge_label, rule.dst_label
        )
        hop1 = (
            f"(n:{rule.label})-[:{rule.edge_label}]->(m:{rule.dst_label})"
            if src1 == rule.label
            else f"(n:{rule.label})<-[:{rule.edge_label}]-"
                 f"(m:{rule.dst_label})"
        )
        src2, _dst2 = self.translator._oriented(
            rule.dst_label, rule.scope_edge_label, rule.scope_label
        )
        closure = (
            f"(m)-[:{rule.scope_edge_label}]->(:{rule.scope_label})"
            if src2 == rule.dst_label
            else f"(m)<-[:{rule.scope_edge_label}]-(:{rule.scope_label})"
        )
        return [RepairAction(
            description=(
                f"quarantine {rule.dst_label} nodes missing their "
                f"{rule.scope_edge_label} closure"
            ),
            query=(
                f"MATCH {hop1} WHERE NOT {closure} "
                f"SET m.{QUARANTINE_KEY} = true"
            ),
            destructive=False,
        )]
