"""Continuous mining: a watch service over one mutating dataset.

``WatchService`` owns the live loop the batch pipeline lacks: it mines a
baseline rule set once, attaches a :class:`~repro.graph.changelog
.GraphChangeLog` to the dataset's graph, accepts mutation batches (the
HTTP wire format of :mod:`repro.stream.mutations`), and keeps the mined
metrics fresh with the :class:`~repro.stream.maintainer
.IncrementalMaintainer` — re-evaluating only affected rules, refreshing
only dirty encoding windows, and emitting ``rule.drift`` events through
obs when a rule's confidence band moves or new violations appear.

Maintenance is *debounced*: a burst of mutation batches coalesces into
one pass that runs once the stream has been quiet for
``debounce_seconds``.  The clock is injectable and the debounce is
driven by explicit :meth:`poll` / :meth:`flush` calls, so tests are
fully deterministic; :meth:`start` spins the background poller a real
deployment wants.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro import obs
from repro.datasets.base import Dataset
from repro.encoding.dirty import changed_window_indexes, refresh_statements
from repro.encoding.incident import IncidentEncoder, Statement
from repro.encoding.windows import SlidingWindowChunker, WindowSet
from repro.graph.changelog import GraphChangeLog
from repro.mining.pipeline import PipelineContext
from repro.mining.result import MiningRun
from repro.mining.sliding import SlidingWindowPipeline
from repro.stream.drift import DriftDetector, DriftEvent
from repro.stream.maintainer import IncrementalMaintainer, MaintenanceReport
from repro.stream.mutations import apply_mutations, parse_mutations


class WatchService:
    """Incremental rule maintenance over one mutating dataset."""

    def __init__(
        self,
        dataset: Dataset,
        model: str = "llama3",
        prompt_mode: str = "zero_shot",
        debounce_seconds: float = 0.5,
        changelog_capacity: int = 4096,
        base_seed: int = 0,
        clock: Callable[[], float] | None = None,
        window_size: int | None = None,
        overlap: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.graph = dataset.graph
        self.model = model
        self.prompt_mode = prompt_mode
        self.debounce_seconds = debounce_seconds
        self.base_seed = base_seed
        self._clock = clock or time.monotonic
        self._window_args = {}
        if window_size is not None:
            self._window_args["window_size"] = window_size
        if overlap is not None:
            self._window_args["overlap"] = overlap

        self.changelog = GraphChangeLog(changelog_capacity).attach(self.graph)
        self.detector = DriftDetector(self.graph.name)
        self._lock = threading.RLock()
        self._run: MiningRun | None = None
        self._maintainer: IncrementalMaintainer | None = None
        self._statements: list[Statement] | None = None
        self._window_set: WindowSet | None = None
        self._chunker: SlidingWindowChunker | None = None
        self._maintained_epoch = self.graph.epoch
        self._last_mutation_at: float | None = None
        self._last_trace_id = ""
        self._batches_received = 0
        self._mutations_applied = 0
        self._maintenance = {
            "batches": 0,
            "rules_reevaluated": 0,
            "rules_pruned": 0,
            "rules_changed": 0,
            "full_fallbacks": 0,
            "windows_changed": 0,
        }
        self._last_report: MaintenanceReport | None = None
        self._poller: threading.Thread | None = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # baseline
    # ------------------------------------------------------------------
    @property
    def run(self) -> MiningRun:
        """The maintained mining run (baseline mined on first access)."""
        self.prime()
        return self._run

    def prime(self) -> None:
        """Mine the baseline rule set if not done yet (idempotent)."""
        with self._lock:
            if self._run is not None:
                return
            with obs.span("stream.prime", dataset=self.graph.name):
                context = PipelineContext.build(self.dataset)
                pipeline = SlidingWindowPipeline(
                    context, base_seed=self.base_seed, **self._window_args
                )
                self._chunker = pipeline.chunker
                self._run = pipeline.mine(self.model, self.prompt_mode)
                self._statements = list(context.statements)
                self._window_set = pipeline.window_set
            self._maintainer = IncrementalMaintainer(self._run, self.graph)
            self._maintained_epoch = self.graph.epoch

    # ------------------------------------------------------------------
    # mutation intake
    # ------------------------------------------------------------------
    def submit(self, payload: object, trace_id: str = "") -> dict:
        """Validate and apply one mutation batch; returns an ack.

        ``trace_id`` (when the mutation arrived with trace context) is
        remembered and stamped onto the drift events of the maintenance
        pass this batch triggers.  Raises
        :exc:`~repro.stream.mutations.MutationError` on malformed or
        inapplicable batches.
        """
        mutations = parse_mutations(payload)
        with self._lock:
            applied = apply_mutations(self.graph, mutations)
            self._batches_received += 1
            self._mutations_applied += applied
            self._last_mutation_at = self._clock()
            if trace_id:
                self._last_trace_id = trace_id
        obs.inc("stream.mutation_batches")
        obs.inc("stream.mutations_applied", applied)
        return {
            "applied": applied,
            "epoch": self.graph.epoch,
            "pending": len(self.changelog.since(self._maintained_epoch)),
        }

    @property
    def dirty(self) -> bool:
        """Whether mutations arrived since the last maintenance pass."""
        return self.graph.epoch > self._maintained_epoch

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def poll(self, now: float | None = None) -> MaintenanceReport | None:
        """Run maintenance if dirty and the debounce window has passed."""
        if not self.dirty:
            return None
        now = self._clock() if now is None else now
        last = self._last_mutation_at
        if last is not None and now - last < self.debounce_seconds:
            return None
        return self.flush()

    def flush(self) -> MaintenanceReport | None:
        """Run maintenance now (ignoring the debounce); None if clean."""
        with self._lock:
            if not self.dirty:
                return None
            self.prime()
            self.changelog.compact()
            since = self._maintained_epoch
            complete = self.changelog.complete_since(since)
            deltas = self.changelog.since(since)
            report = self._maintainer.apply(deltas, complete=complete)
            self._refresh_windows(deltas, complete)
            events = self.detector.observe(
                report, trace_id=self._last_trace_id
            )
            self._maintained_epoch = self.graph.epoch
            self.changelog.clear(through_epoch=self._maintained_epoch)
            self._last_mutation_at = None
            self._last_trace_id = ""
            self._account(report, events)
            return report

    def _refresh_windows(self, deltas: list, complete: bool) -> None:
        """Re-encode dirty incident blocks and re-chunk; track savings."""
        if self._statements is None or self._chunker is None:
            return
        if complete:
            statements = refresh_statements(
                self.graph, self._statements, deltas
            )
        else:  # lost deltas: the cached statements are untrustworthy
            statements = IncidentEncoder().encode(self.graph)
        window_set = self._chunker.chunk_statements(statements)
        changed = changed_window_indexes(self._window_set, window_set)
        self._statements = statements
        self._window_set = window_set
        self._maintenance["windows_changed"] += len(changed)
        obs.inc("stream.windows_changed", len(changed))
        obs.set_gauge("stream.windows_total", window_set.window_count)

    def _account(
        self, report: MaintenanceReport, events: list[DriftEvent]
    ) -> None:
        self._last_report = report
        stats = self._maintenance
        stats["batches"] += 1
        stats["rules_reevaluated"] += report.reevaluated
        stats["rules_pruned"] += report.pruned
        stats["rules_changed"] += report.changed
        if report.full_fallback:
            stats["full_fallbacks"] += 1
        obs.set_gauge("stream.maintained_epoch", self._maintained_epoch)
        if events:
            obs.inc("stream.drift_events", len(events))

    # ------------------------------------------------------------------
    # background poller
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background debounce poller (idempotent)."""
        with self._lock:
            if self._poller is not None:
                return
            self._stop.clear()
            self._poller = threading.Thread(
                target=self._poll_loop,
                name=f"watch-{self.graph.name}",
                daemon=True,
            )
            self._poller.start()

    def stop(self) -> None:
        """Stop the poller and run a final maintenance pass if dirty."""
        with self._lock:
            poller, self._poller = self._poller, None
        if poller is not None:
            self._stop.set()
            poller.join(timeout=5.0)
        self.flush()

    def _poll_loop(self) -> None:
        interval = max(0.05, self.debounce_seconds / 2)
        while not self._stop.wait(interval):
            try:
                self.poll()
            except Exception:  # pragma: no cover - keep the poller alive
                obs.inc("stream.poll_errors")

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry(self) -> dict:
        """The ``/drift`` endpoint payload."""
        with self._lock:
            last = None
            if self._last_report is not None:
                report = self._last_report
                last = {
                    "epoch": report.epoch,
                    "deltas": report.deltas,
                    "reevaluated": report.reevaluated,
                    "pruned": report.pruned,
                    "changed": report.changed,
                    "full_fallback": report.full_fallback,
                    "savings": round(report.savings, 4),
                }
            return {
                "dataset": self.graph.name,
                "model": self.model,
                "prompt_mode": self.prompt_mode,
                "epoch": self.graph.epoch,
                "maintained_epoch": self._maintained_epoch,
                "dirty": self.dirty,
                "debounce_seconds": self.debounce_seconds,
                "baseline_rules": (
                    self._run.rule_count if self._run is not None else None
                ),
                "batches_received": self._batches_received,
                "mutations_applied": self._mutations_applied,
                "changelog": {
                    "size": len(self.changelog),
                    "dropped": self.changelog.dropped,
                },
                "maintenance": {**self._maintenance, "last": last},
                "windows": (
                    self._window_set.window_count
                    if self._window_set is not None else None
                ),
                "drift": self.detector.telemetry(),
            }
