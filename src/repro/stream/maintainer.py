"""Incremental maintenance of mined-rule metrics under graph deltas.

Full re-mining reruns every rule's three count queries after any
mutation; the :class:`IncrementalMaintainer` instead proves most rules
unaffected.  Per rule it extracts a :class:`~repro.stream.footprint
.RuleFootprint` from the metric query bundle (once, cached), resolves
wildcards against the planner's catalog, and re-evaluates only rules
some delta in the batch can actually reach.  Rules it cannot prove
unaffected fall back to re-evaluation, so the result is always
value-identical to a from-scratch recompute — the property the
hypothesis suite in ``tests/test_stream_equivalence.py`` checks.

Rules whose bundle never executes (untranslatable rules and statically
triaged ones score a constant zero) are graph-independent and never
re-evaluated at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.graph.changelog import GraphChangeLog, GraphDelta
from repro.graph.store import PropertyGraph
from repro.metrics.definitions import RuleMetrics
from repro.metrics.evaluator import evaluate_rule
from repro.mining.result import MiningRun, RuleResult
from repro.stream.footprint import (
    RuleFootprint,
    delta_affects,
    footprint_of_queries,
    resolve_footprint,
)

_ZERO = RuleMetrics(support=0, relevant=0, body=0)


@dataclass(frozen=True)
class RuleChange:
    """One rule whose metrics moved under a delta batch."""

    index: int                  # position in the run's result list
    rule_text: str
    before: RuleMetrics
    after: RuleMetrics


@dataclass
class MaintenanceReport:
    """Accounting for one maintenance pass."""

    epoch: int = 0
    deltas: int = 0
    total_rules: int = 0
    constant_rules: int = 0     # graph-independent (zero-scoring) rules
    pruned: int = 0             # proven unaffected, metrics kept
    reevaluated: int = 0
    full_fallback: bool = False
    changes: list[RuleChange] = field(default_factory=list)

    @property
    def changed(self) -> int:
        return len(self.changes)

    @property
    def savings(self) -> float:
        """Fraction of evaluable rules the pass did *not* re-evaluate."""
        evaluable = self.total_rules - self.constant_rules
        if evaluable <= 0:
            return 0.0
        return self.pruned / evaluable


def _is_constant(result: RuleResult) -> bool:
    """Rules whose metrics never depend on graph state (always zero)."""
    return result.outcome.metric_queries is None or result.triage_skipped


def _batch_vocabulary(
    deltas: list[GraphDelta],
) -> tuple[frozenset[str], frozenset[str]]:
    labels: set[str] = set()
    edge_types: set[str] = set()
    for delta in deltas:
        labels.update(delta.labels)
        if delta.edge_label is not None:
            edge_types.add(delta.edge_label)
    return frozenset(labels), frozenset(edge_types)


class IncrementalMaintainer:
    """Keeps one :class:`MiningRun`'s metrics in sync with its graph.

    The maintainer owns the run's metric freshness: call :meth:`apply`
    with the delta batch after mutating the graph (or :meth:`apply_log`
    to drain an attached changelog).  Metrics are updated in place on
    the run's results.
    """

    def __init__(self, run: MiningRun, graph: PropertyGraph) -> None:
        self.run = run
        self.graph = graph
        self._footprints: dict[int, RuleFootprint] = {}

    # ------------------------------------------------------------------
    def footprint(self, index: int) -> RuleFootprint:
        """The (cached, unresolved) footprint of rule ``index``."""
        cached = self._footprints.get(index)
        if cached is not None:
            return cached
        result = self.run.results[index]
        queries = result.outcome.metric_queries
        if queries is None:
            footprint = RuleFootprint()       # constant: observes nothing
        else:
            footprint = footprint_of_queries(
                [queries.satisfy, queries.relevant, queries.body]
            )
        self._footprints[index] = footprint
        return footprint

    # ------------------------------------------------------------------
    def recompute(self) -> list[RuleMetrics]:
        """From-scratch metrics for every rule (the equivalence oracle).

        Does not mutate the run — callers compare or assign explicitly.
        """
        fresh: list[RuleMetrics] = []
        for result in self.run.results:
            if _is_constant(result):
                fresh.append(_ZERO)
            else:
                fresh.append(
                    evaluate_rule(self.graph, result.outcome.metric_queries)
                )
        return fresh

    # ------------------------------------------------------------------
    def apply(
        self, deltas: list[GraphDelta], complete: bool = True
    ) -> MaintenanceReport:
        """Maintain metrics after ``deltas`` were applied to the graph.

        ``complete=False`` declares the delta list untrustworthy (ring
        buffer overflowed): every evaluable rule is re-evaluated.  The
        returned report lists the rules whose metrics actually moved.
        """
        report = MaintenanceReport(
            epoch=self.graph.epoch,
            deltas=len(deltas),
            total_rules=len(self.run.results),
            full_fallback=not complete,
        )
        if not deltas and complete:
            report.constant_rules = sum(
                1 for result in self.run.results if _is_constant(result)
            )
            report.pruned = report.total_rules - report.constant_rules
            return report

        catalog = self.graph.catalog()
        batch_labels, batch_edge_types = _batch_vocabulary(deltas)
        with obs.span(
            "stream.maintain", dataset=self.run.dataset, deltas=len(deltas)
        ) as sp:
            for index, result in enumerate(self.run.results):
                if _is_constant(result):
                    report.constant_rules += 1
                    continue
                if complete:
                    # pruning needs a trustworthy delta list; on fallback
                    # every evaluable rule re-evaluates unconditionally
                    # (the surviving deltas may have compacted to nothing
                    # while the *lost* ones touched anything at all)
                    footprint = resolve_footprint(
                        self.footprint(index), catalog,
                        batch_labels, batch_edge_types,
                    )
                    if not any(
                        delta_affects(footprint, delta) for delta in deltas
                    ):
                        report.pruned += 1
                        continue
                before = result.metrics
                after = evaluate_rule(self.graph, result.outcome.metric_queries)
                result.metrics = after
                report.reevaluated += 1
                if after != before:
                    report.changes.append(RuleChange(
                        index=index,
                        rule_text=result.rule.text,
                        before=before,
                        after=after,
                    ))
            sp.set_attribute("reevaluated", report.reevaluated)
            sp.set_attribute("pruned", report.pruned)
        obs.inc("stream.maintenance_batches")
        obs.inc("stream.rules_reevaluated", report.reevaluated)
        obs.inc("stream.rules_pruned", report.pruned)
        if not complete:
            obs.inc("stream.full_fallbacks")
        if report.changes:
            obs.inc("stream.rules_changed", len(report.changes))
        return report

    # ------------------------------------------------------------------
    def apply_log(
        self, changelog: GraphChangeLog, since_epoch: int
    ) -> MaintenanceReport:
        """Drain ``changelog`` for mutations after ``since_epoch``.

        Compacts first (superseded deltas cannot affect final metrics),
        and degrades to a full re-evaluation when the ring buffer lost
        deltas newer than ``since_epoch``.
        """
        changelog.compact()
        complete = changelog.complete_since(since_epoch)
        deltas = changelog.since(since_epoch)
        return self.apply(deltas, complete=complete)


__all__ = [
    "IncrementalMaintainer",
    "MaintenanceReport",
    "RuleChange",
]
