"""Rule footprints: which graph vocabulary a metric bundle can read.

A rule's §4.2 metrics are three count queries; their results are a pure
function of the graph state those queries can *observe*.  The footprint
over-approximates that observable region as a vocabulary triple — node
labels scanned, edge types traversed, property keys read — plus wildcard
flags for the constructs that defeat static narrowing (unlabelled node
patterns, untyped relationships, ``properties(n)``-style dynamic access,
or a query our parser rejects).

The incremental maintainer intersects footprints against a delta batch:
a rule whose footprint is disjoint from everything the batch touched
provably kept its metrics, so it is never re-evaluated.  Wildcards are
resolved against the planner's catalog (the current label / edge-type
vocabulary) at decision time, so "any label" means "any label that
actually exists or is being introduced", not a blanket re-evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass

from repro.cypher import ast_nodes as ast
from repro.cypher.errors import CypherError
from repro.cypher.parser import parse
from repro.graph.changelog import DeltaKind, GraphDelta
from repro.graph.statistics import GraphCatalog

#: functions whose value depends on a node/edge's *entire* property map —
#: a property delta on any key can change them
_DYNAMIC_PROPERTY_FUNCTIONS = frozenset({"properties", "keys"})


@dataclass(frozen=True)
class RuleFootprint:
    """Static over-approximation of one rule's observable vocabulary."""

    labels: frozenset[str] = frozenset()
    edge_types: frozenset[str] = frozenset()
    property_keys: frozenset[str] = frozenset()
    any_label: bool = False        # unlabelled node pattern present
    any_edge_type: bool = False    # untyped relationship pattern present
    any_property: bool = False     # dynamic whole-map property access
    wildcard: bool = False         # could not analyze: affected by anything

    def union(self, other: "RuleFootprint") -> "RuleFootprint":
        return RuleFootprint(
            labels=self.labels | other.labels,
            edge_types=self.edge_types | other.edge_types,
            property_keys=self.property_keys | other.property_keys,
            any_label=self.any_label or other.any_label,
            any_edge_type=self.any_edge_type or other.any_edge_type,
            any_property=self.any_property or other.any_property,
            wildcard=self.wildcard or other.wildcard,
        )


#: a footprint that intersects every delta — the sound fallback
WILDCARD_FOOTPRINT = RuleFootprint(wildcard=True)


def _walk(obj: object):
    """Yield every AST dataclass node reachable from ``obj``."""
    stack = [obj]
    while stack:
        current = stack.pop()
        if isinstance(current, (tuple, list)):
            stack.extend(current)
            continue
        if not is_dataclass(current) or isinstance(current, type):
            continue
        yield current
        for field in fields(current):
            stack.append(getattr(current, field.name))


class _Collector:
    def __init__(self) -> None:
        self.labels: set[str] = set()
        self.edge_types: set[str] = set()
        self.property_keys: set[str] = set()
        self.any_label = False
        self.any_edge_type = False
        self.any_property = False

    def visit(self, node: object) -> None:
        if isinstance(node, ast.NodePattern):
            if node.labels:
                self.labels.update(node.labels)
            else:
                self.any_label = True
            self.property_keys.update(key for key, _ in node.properties)
        elif isinstance(node, ast.RelPattern):
            if node.types:
                self.edge_types.update(node.types)
            else:
                self.any_edge_type = True
            self.property_keys.update(key for key, _ in node.properties)
        elif isinstance(node, ast.LabelPredicate):
            self.labels.update(node.labels)
        elif isinstance(node, ast.PropertyAccess):
            self.property_keys.add(node.key)
        elif isinstance(node, ast.FunctionCall):
            if node.name in _DYNAMIC_PROPERTY_FUNCTIONS:
                self.any_property = True

    def footprint(self) -> RuleFootprint:
        return RuleFootprint(
            labels=frozenset(self.labels),
            edge_types=frozenset(self.edge_types),
            property_keys=frozenset(self.property_keys),
            any_label=self.any_label,
            any_edge_type=self.any_edge_type,
            any_property=self.any_property,
        )


def extract_footprint(query_text: str) -> RuleFootprint | None:
    """Footprint of one query, or None when the query cannot parse.

    ``None`` is *stronger* than a wildcard: the evaluator's ``_count``
    scores an unparsable query 0 on every graph, so it contributes
    nothing observable at all.
    """
    try:
        tree = parse(query_text)
    except CypherError:
        return None
    collector = _Collector()
    for node in _walk(tree):
        collector.visit(node)
    return collector.footprint()


def footprint_of_queries(query_texts: list[str]) -> RuleFootprint:
    """Union footprint of a rule's evaluated count queries."""
    result = RuleFootprint()
    for text in query_texts:
        footprint = extract_footprint(text)
        if footprint is not None:
            result = result.union(footprint)
    return result


def resolve_footprint(
    footprint: RuleFootprint,
    catalog: GraphCatalog,
    batch_labels: frozenset[str],
    batch_edge_types: frozenset[str],
) -> RuleFootprint:
    """Ground wildcard flags against the catalog's current vocabulary.

    An unlabelled node pattern can observe any label that exists now or
    is mentioned by the batch (``batch_labels`` must include vocabulary
    the batch removes — the catalog is post-batch state and may have
    forgotten it); likewise untyped relationships.  Resolution
    keeps the flags set (future-proof against vocabulary the catalog has
    not seen) but widens the concrete sets so plain intersection works.
    """
    labels = footprint.labels
    edge_types = footprint.edge_types
    if footprint.any_label:
        labels = labels | frozenset(catalog.label_counts) | batch_labels
    if footprint.any_edge_type:
        edge_types = (
            edge_types | frozenset(catalog.edge_stats) | batch_edge_types
        )
    return RuleFootprint(
        labels=labels,
        edge_types=edge_types,
        property_keys=footprint.property_keys,
        any_label=footprint.any_label,
        any_edge_type=footprint.any_edge_type,
        any_property=footprint.any_property,
        wildcard=footprint.wildcard,
    )


def delta_affects(footprint: RuleFootprint, delta: GraphDelta) -> bool:
    """Whether ``delta`` can change a rule with a *resolved* footprint.

    Callers must ground wildcards first (:func:`resolve_footprint` with
    batch vocabulary covering every label / edge type the batch
    mentions) — afterwards plain set intersection is sound.  True may be
    spurious; False is a proof of non-interference.  Structural node
    deltas interfere through shared labels; property deltas additionally
    require a shared property key; edge deltas interfere through the
    edge type (endpoint labels are deliberately ignored — the delta does
    not carry them).
    """
    if footprint.wildcard:
        return True
    kind = delta.kind
    if kind in (DeltaKind.NODE_ADDED, DeltaKind.NODE_REMOVED):
        return bool(footprint.labels.intersection(delta.labels))
    if kind is DeltaKind.NODE_PROPS:
        return bool(footprint.labels.intersection(delta.labels)) and (
            footprint.any_property
            or bool(footprint.property_keys.intersection(delta.keys))
        )
    # edge deltas
    touches_type = delta.edge_label in footprint.edge_types
    if kind is DeltaKind.EDGE_PROPS:
        return touches_type and (
            footprint.any_property
            or bool(footprint.property_keys.intersection(delta.keys))
        )
    return touches_type
