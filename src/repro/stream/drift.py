"""Rule-drift detection: turning metric movement into events.

Continuous mining is only useful if someone hears about the drift.  A
:class:`DriftDetector` folds each maintenance pass's
:class:`~repro.stream.maintainer.RuleChange` list into typed events:

* ``confidence_band`` — the rule's confidence crossed a quartile band
  boundary (gained or lost a band);
* ``new_violations`` — the body-but-not-satisfying population grew, i.e.
  fresh violations of the rule appeared in the graph.

Events are emitted through obs (``rule.drift`` counter, labelled by
kind) and retained in a bounded in-memory log that backs the ``/drift``
telemetry endpoint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.metrics.definitions import RuleMetrics
from repro.stream.maintainer import MaintenanceReport, RuleChange

#: quartile confidence bands (percent, upper-exclusive except the last)
CONFIDENCE_BANDS = (25.0, 50.0, 75.0)


def confidence_band(metrics: RuleMetrics) -> int:
    """Band index 0-3 for a rule's confidence percentage."""
    confidence = metrics.confidence
    for band, threshold in enumerate(CONFIDENCE_BANDS):
        if confidence < threshold:
            return band
    return len(CONFIDENCE_BANDS)


def violations(metrics: RuleMetrics) -> int:
    """Body matches that do not satisfy the rule."""
    return max(0, metrics.body - metrics.support)


@dataclass(frozen=True)
class DriftEvent:
    """One observed rule drift."""

    kind: str                   # 'confidence_band' | 'new_violations'
    dataset: str
    rule_text: str
    epoch: int
    before: RuleMetrics
    after: RuleMetrics
    #: trace id of the mutation batch that triggered the maintenance
    #: pass (empty when the mutation carried no trace context)
    trace_id: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "rule": self.rule_text,
            "epoch": self.epoch,
            "trace_id": self.trace_id,
            "confidence_before": round(self.before.confidence, 2),
            "confidence_after": round(self.after.confidence, 2),
            "band_before": confidence_band(self.before),
            "band_after": confidence_band(self.after),
            "violations_before": violations(self.before),
            "violations_after": violations(self.after),
            "support_before": self.before.support,
            "support_after": self.after.support,
        }


def detect_drift(
    dataset: str, report: MaintenanceReport, trace_id: str = ""
) -> list[DriftEvent]:
    """Derive drift events from one maintenance report."""
    events: list[DriftEvent] = []
    for change in report.changes:
        events.extend(_events_for(dataset, report.epoch, change, trace_id))
    return events


def _events_for(
    dataset: str, epoch: int, change: RuleChange, trace_id: str = ""
) -> list[DriftEvent]:
    events: list[DriftEvent] = []
    if confidence_band(change.before) != confidence_band(change.after):
        events.append(DriftEvent(
            kind="confidence_band",
            dataset=dataset,
            rule_text=change.rule_text,
            epoch=epoch,
            before=change.before,
            after=change.after,
            trace_id=trace_id,
        ))
    if violations(change.after) > violations(change.before):
        events.append(DriftEvent(
            kind="new_violations",
            dataset=dataset,
            rule_text=change.rule_text,
            epoch=epoch,
            before=change.before,
            after=change.after,
            trace_id=trace_id,
        ))
    return events


class DriftDetector:
    """Stateful sink: detects, counts and retains drift events."""

    def __init__(self, dataset: str, retain: int = 256) -> None:
        self.dataset = dataset
        self._events: deque[DriftEvent] = deque(maxlen=retain)
        self._total = 0
        self._by_kind: dict[str, int] = {}

    def observe(
        self, report: MaintenanceReport, trace_id: str = ""
    ) -> list[DriftEvent]:
        """Fold one maintenance report; returns the new events."""
        events = detect_drift(self.dataset, report, trace_id)
        for event in events:
            self._events.append(event)
            self._total += 1
            self._by_kind[event.kind] = self._by_kind.get(event.kind, 0) + 1
            obs.inc("rule.drift", kind=event.kind, dataset=event.dataset)
        return events

    @property
    def total(self) -> int:
        return self._total

    def events(self, limit: int | None = None) -> list[DriftEvent]:
        """Most recent events, oldest first."""
        recent = list(self._events)
        if limit is not None:
            recent = recent[-limit:]
        return recent

    def telemetry(self) -> dict:
        """The ``/drift`` endpoint payload."""
        return {
            "dataset": self.dataset,
            "total_events": self._total,
            "by_kind": dict(sorted(self._by_kind.items())),
            "recent": [event.to_dict() for event in self.events(50)],
        }
