"""Wire format for mutation batches submitted over HTTP.

A batch is a JSON object ``{"mutations": [...]}`` where each entry names
an ``op`` plus its operands::

    {"op": "add_node",    "id": "u9", "labels": ["User"],
     "properties": {"name": "Zoe"}}
    {"op": "remove_node", "id": "u9"}
    {"op": "add_edge",    "id": "f3", "label": "FOLLOWS",
     "src": "u1", "dst": "u2", "properties": {}}
    {"op": "remove_edge", "id": "f3"}
    {"op": "set_props",   "target": "node", "id": "u1",
     "properties": {"age": 31}}
    {"op": "remove_prop", "target": "node", "id": "u1", "key": "age"}

:func:`parse_mutations` validates the envelope strictly (unknown ops,
missing operands and malformed property maps all raise
:exc:`MutationError` before anything touches the graph);
:func:`apply_mutations` then applies a parsed batch inside a single
``graph.batch()`` so the whole submission costs one epoch bump.  The
store is not transactional: if an op fails mid-batch (say a dangling
edge) the earlier ops stay applied — the raised error names the failing
index so the client can tell what landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.errors import GraphError
from repro.graph.store import PropertyGraph

OPS = (
    "add_node", "remove_node", "add_edge", "remove_edge",
    "set_props", "remove_prop",
)
_TARGETS = ("node", "edge")
#: refuse pathological payloads before they reach the store
MAX_BATCH_OPS = 10_000


class MutationError(ValueError):
    """A malformed or inapplicable mutation batch (maps to HTTP 400)."""


@dataclass(frozen=True)
class Mutation:
    """One validated mutation operation."""

    op: str
    id: str
    labels: tuple[str, ...] = ()
    label: str | None = None
    src: str | None = None
    dst: str | None = None
    target: str = "node"
    key: str | None = None
    properties: dict = field(default_factory=dict)


def _require_str(entry: dict, key: str, index: int) -> str:
    value = entry.get(key)
    if not isinstance(value, str) or not value:
        raise MutationError(
            f"mutation {index}: {key!r} must be a non-empty string"
        )
    return value


def _optional_properties(entry: dict, index: int) -> dict:
    properties = entry.get("properties", {})
    if not isinstance(properties, dict):
        raise MutationError(f"mutation {index}: 'properties' must be an object")
    for key in properties:
        if not isinstance(key, str):
            raise MutationError(
                f"mutation {index}: property keys must be strings"
            )
    return properties


def parse_mutations(payload: object) -> list[Mutation]:
    """Validate a decoded JSON payload into a mutation list."""
    if not isinstance(payload, dict):
        raise MutationError("payload must be a JSON object")
    raw = payload.get("mutations")
    if not isinstance(raw, list) or not raw:
        raise MutationError("'mutations' must be a non-empty array")
    if len(raw) > MAX_BATCH_OPS:
        raise MutationError(
            f"batch exceeds {MAX_BATCH_OPS} operations"
        )
    mutations: list[Mutation] = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise MutationError(f"mutation {index}: must be an object")
        op = entry.get("op")
        if op not in OPS:
            raise MutationError(
                f"mutation {index}: unknown op {op!r} (expected one of "
                f"{', '.join(OPS)})"
            )
        subject = _require_str(entry, "id", index)
        if op == "add_node":
            labels = entry.get("labels")
            if (
                not isinstance(labels, list) or not labels
                or not all(isinstance(x, str) and x for x in labels)
            ):
                raise MutationError(
                    f"mutation {index}: 'labels' must be a non-empty "
                    "array of strings"
                )
            mutations.append(Mutation(
                op=op, id=subject, labels=tuple(labels),
                properties=_optional_properties(entry, index),
            ))
        elif op == "add_edge":
            mutations.append(Mutation(
                op=op, id=subject,
                label=_require_str(entry, "label", index),
                src=_require_str(entry, "src", index),
                dst=_require_str(entry, "dst", index),
                properties=_optional_properties(entry, index),
            ))
        elif op in ("remove_node", "remove_edge"):
            mutations.append(Mutation(op=op, id=subject))
        elif op == "set_props":
            target = entry.get("target", "node")
            if target not in _TARGETS:
                raise MutationError(
                    f"mutation {index}: 'target' must be 'node' or 'edge'"
                )
            properties = _optional_properties(entry, index)
            if not properties:
                raise MutationError(
                    f"mutation {index}: set_props needs a non-empty "
                    "'properties' object"
                )
            mutations.append(Mutation(
                op=op, id=subject, target=target, properties=properties,
            ))
        else:  # remove_prop
            target = entry.get("target", "node")
            if target != "node":
                raise MutationError(
                    f"mutation {index}: remove_prop supports nodes only"
                )
            mutations.append(Mutation(
                op=op, id=subject, target=target,
                key=_require_str(entry, "key", index),
            ))
    return mutations


def apply_mutations(
    graph: PropertyGraph, mutations: list[Mutation]
) -> int:
    """Apply a parsed batch under one epoch bump; returns ops applied.

    Raises :exc:`MutationError` naming the failing op; ops before it
    remain applied (their deltas are emitted, so downstream maintenance
    stays correct even for partial batches).
    """
    applied = 0
    with graph.batch():
        for index, mutation in enumerate(mutations):
            try:
                _apply_one(graph, mutation)
            except GraphError as error:
                raise MutationError(
                    f"mutation {index} ({mutation.op} {mutation.id!r}) "
                    f"failed: {error}"
                ) from error
            applied += 1
    return applied


def _apply_one(graph: PropertyGraph, mutation: Mutation) -> None:
    if mutation.op == "add_node":
        graph.add_node(mutation.id, mutation.labels, mutation.properties)
    elif mutation.op == "remove_node":
        graph.remove_node(mutation.id)
    elif mutation.op == "add_edge":
        graph.add_edge(
            mutation.id, mutation.label, mutation.src, mutation.dst,
            mutation.properties,
        )
    elif mutation.op == "remove_edge":
        graph.remove_edge(mutation.id)
    elif mutation.op == "set_props":
        if mutation.target == "node":
            graph.update_node(mutation.id, mutation.properties)
        else:
            graph.update_edge(mutation.id, mutation.properties)
    else:  # remove_prop
        graph.remove_node_property(mutation.id, mutation.key)
