"""Incremental rule maintenance and continuous mining over mutating graphs.

The batch pipelines mine a static snapshot; ``repro.stream`` keeps the
result alive as the graph changes: typed deltas from the graph's change
log drive footprint-pruned metric re-evaluation, dirty-window
re-encoding, and rule-drift events — see :mod:`repro.stream.watch` for
the serving loop and :mod:`repro.stream.maintainer` for the equivalence
guarantee (incremental maintenance ≡ full recompute).
"""

from repro.stream.drift import (
    CONFIDENCE_BANDS,
    DriftDetector,
    DriftEvent,
    confidence_band,
    detect_drift,
    violations,
)
from repro.stream.footprint import (
    RuleFootprint,
    WILDCARD_FOOTPRINT,
    delta_affects,
    extract_footprint,
    footprint_of_queries,
    resolve_footprint,
)
from repro.stream.maintainer import (
    IncrementalMaintainer,
    MaintenanceReport,
    RuleChange,
)
from repro.stream.mutations import (
    MAX_BATCH_OPS,
    Mutation,
    MutationError,
    apply_mutations,
    parse_mutations,
)
from repro.stream.watch import WatchService

__all__ = [
    "CONFIDENCE_BANDS",
    "DriftDetector",
    "DriftEvent",
    "IncrementalMaintainer",
    "MAX_BATCH_OPS",
    "MaintenanceReport",
    "Mutation",
    "MutationError",
    "RuleChange",
    "RuleFootprint",
    "WILDCARD_FOOTPRINT",
    "WatchService",
    "apply_mutations",
    "confidence_band",
    "delta_affects",
    "detect_drift",
    "extract_footprint",
    "footprint_of_queries",
    "parse_mutations",
    "resolve_footprint",
    "violations",
]
