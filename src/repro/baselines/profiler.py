"""Schema-profiler baseline: constraint suggestion from exact statistics.

The classical, non-LLM way to obtain the same constraint classes the
study's LLMs produce: profile the whole graph exactly (no windows, no
retrieval) and emit every rule whose measured quality clears a
threshold.  This is the "data-mined constraints" family the introduction
contrasts with — complete and exact, but it "can generate an
overwhelming number of constraints" with no notion of which ones a
domain expert would care about.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.graph.schema import GraphSchema, infer_schema
from repro.graph.store import PropertyGraph
from repro.llm.induction import FORMAT_DETECTORS
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.nl import to_natural_language


@dataclass(frozen=True)
class ProfilerConfig:
    """Quality thresholds for emitted constraints."""

    min_completeness: float = 0.95   # PROPERTY_EXISTS threshold
    min_uniqueness: float = 1.0      # UNIQUENESS threshold
    max_domain_size: int = 6         # VALUE_DOMAIN distinct values
    min_label_count: int = 2         # ignore singleton labels


def _finish(rule: ConsistencyRule) -> ConsistencyRule:
    return ConsistencyRule(
        kind=rule.kind, text=to_natural_language(rule), label=rule.label,
        properties=rule.properties, edge_label=rule.edge_label,
        src_label=rule.src_label, dst_label=rule.dst_label,
        allowed_values=rule.allowed_values, pattern_regex=rule.pattern_regex,
        scope_edge_label=rule.scope_edge_label, scope_label=rule.scope_label,
        time_property=rule.time_property, provenance="profiler",
    )


class SchemaProfiler:
    """Exhaustively derives schema constraints from exact statistics."""

    def __init__(self, config: ProfilerConfig | None = None) -> None:
        self.config = config or ProfilerConfig()

    # ------------------------------------------------------------------
    def mine(
        self, graph: PropertyGraph, schema: GraphSchema | None = None
    ) -> list[ConsistencyRule]:
        schema = schema or infer_schema(graph)
        rules: list[ConsistencyRule] = []
        rules.extend(self._node_rules(graph, schema))
        rules.extend(self._edge_rules(schema))
        return rules

    # ------------------------------------------------------------------
    def _node_rules(
        self, graph: PropertyGraph, schema: GraphSchema
    ) -> list[ConsistencyRule]:
        rules: list[ConsistencyRule] = []
        for label in schema.node_labels():
            profile = schema.node_profiles[label]
            if profile.count < self.config.min_label_count:
                continue
            mandatory = [
                key for key, prop in sorted(profile.properties.items())
                if prop.completeness(profile.count)
                >= self.config.min_completeness
            ]
            if mandatory:
                rules.append(_finish(ConsistencyRule(
                    kind=RuleKind.PROPERTY_EXISTS, text="", label=label,
                    properties=tuple(mandatory),
                )))
            for key, prop in sorted(profile.properties.items()):
                if (
                    prop.completeness(profile.count) >= 1.0
                    and prop.uniqueness() >= self.config.min_uniqueness
                ):
                    rules.append(_finish(ConsistencyRule(
                        kind=RuleKind.UNIQUENESS, text="", label=label,
                        properties=(key,),
                    )))
                rules.extend(self._value_rules(label, key, prop))
        return rules

    def _value_rules(self, label: str, key: str, prop) -> list[ConsistencyRule]:
        values = prop.distinct_sample
        if not values:
            return []
        rules: list[ConsistencyRule] = []
        if values <= {True, False} and prop.present >= 3:
            rules.append(_finish(ConsistencyRule(
                kind=RuleKind.VALUE_DOMAIN, text="", label=label,
                properties=(key,), allowed_values=(True, False),
            )))
            return rules
        strings = [value for value in values if isinstance(value, str)]
        if len(strings) == len(values) and len(strings) >= 3:
            for _name, regex in FORMAT_DETECTORS:
                compiled = re.compile(regex)
                if all(compiled.fullmatch(value) for value in strings):
                    rules.append(_finish(ConsistencyRule(
                        kind=RuleKind.VALUE_FORMAT, text="", label=label,
                        properties=(key,), pattern_regex=regex,
                    )))
                    return rules
        if (
            len(values) <= self.config.max_domain_size
            and prop.present >= 8
            and all(isinstance(value, str) for value in values)
        ):
            rules.append(_finish(ConsistencyRule(
                kind=RuleKind.VALUE_DOMAIN, text="", label=label,
                properties=(key,),
                allowed_values=tuple(sorted(values)),
            )))
        return rules

    def _edge_rules(self, schema: GraphSchema) -> list[ConsistencyRule]:
        rules: list[ConsistencyRule] = []
        for edge_label in schema.edge_labels():
            profile = schema.edge_profiles[edge_label]
            signatures = schema.endpoint_signatures(edge_label)
            if len(signatures) == 1:
                signature = signatures[0]
                rules.append(_finish(ConsistencyRule(
                    kind=RuleKind.ENDPOINT, text="", edge_label=edge_label,
                    src_label=signature.src_label,
                    dst_label=signature.dst_label,
                )))
            mandatory = [
                key for key, prop in sorted(profile.properties.items())
                if prop.completeness(profile.count)
                >= self.config.min_completeness
            ]
            if mandatory:
                rules.append(_finish(ConsistencyRule(
                    kind=RuleKind.EDGE_PROP_EXISTS, text="",
                    edge_label=edge_label, properties=tuple(mandatory),
                )))
        return rules
