"""Non-LLM comparators: AMIE-style Horn rules and schema profiling."""

from repro.baselines.amie import AmieConfig, AmieMiner, HornRule
from repro.baselines.profiler import ProfilerConfig, SchemaProfiler

__all__ = [
    "AmieConfig",
    "AmieMiner",
    "HornRule",
    "ProfilerConfig",
    "SchemaProfiler",
]
