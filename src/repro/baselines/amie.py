"""AMIE-style Horn-rule miner over property-graph relations.

The related-work baseline (Galárraga et al., AMIE; Lajus et al., AMIE 3):
exhaustively mine closed Horn rules over the graph's relation labels,

* ``E1(x, y) ⇒ E2(x, y)``     (same-direction implication)
* ``E1(x, y) ⇒ E2(y, x)``     (inverse implication)
* ``E1(x, z) ∧ E2(z, y) ⇒ E3(x, y)``  (length-2 chain)

scored with AMIE's measures — support (number of head facts predicted
correctly), head coverage (support / head-relation size) and standard
confidence (support / body matches) — and pruned by thresholds.  Unlike
the LLM pipeline this is exact and complete over its rule language, but
it only speaks in relation co-occurrence: it cannot produce the
property-centric consistency rules (keys, domains, formats) the LLMs
find, which is precisely the contrast the paper draws with data-mined
rules.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.graph.store import PropertyGraph

#: enumeration guard for chain-rule joins on very dense graphs
MAX_JOIN_PAIRS = 2_000_000


@dataclass(frozen=True)
class HornRule:
    """One mined Horn rule with its AMIE measures."""

    body: tuple[str, ...]       # 1 atom (implication) or 2 (chain)
    head: str
    inverse: bool               # E1(x,y) => head(y,x) for 1-atom rules
    support: int
    body_size: int
    head_size: int

    @property
    def head_coverage(self) -> float:
        return self.support / self.head_size if self.head_size else 0.0

    @property
    def confidence(self) -> float:
        return self.support / self.body_size if self.body_size else 0.0

    def describe(self) -> str:
        if len(self.body) == 1:
            direction = "(y, x)" if self.inverse else "(x, y)"
            body = f"{self.body[0]}(x, y)"
            head = f"{self.head}{direction}"
        else:
            body = f"{self.body[0]}(x, z) AND {self.body[1]}(z, y)"
            head = f"{self.head}(x, y)"
        return (
            f"{body} => {head}  "
            f"[supp={self.support}, hc={self.head_coverage:.2f}, "
            f"conf={self.confidence:.2f}]"
        )


@dataclass(frozen=True)
class AmieConfig:
    min_support: int = 10
    min_head_coverage: float = 0.01
    min_confidence: float = 0.1


class AmieMiner:
    """Exhaustive miner for the bounded Horn-rule language above."""

    def __init__(self, config: AmieConfig | None = None) -> None:
        self.config = config or AmieConfig()

    # ------------------------------------------------------------------
    def mine(self, graph: PropertyGraph) -> list[HornRule]:
        """All rules clearing the thresholds, best confidence first."""
        pairs = self._relation_pairs(graph)
        rules: list[HornRule] = []
        rules.extend(self._implications(pairs))
        rules.extend(self._chains(graph, pairs))
        rules.sort(
            key=lambda rule: (-rule.confidence, -rule.support, rule.head)
        )
        return rules

    # ------------------------------------------------------------------
    @staticmethod
    def _relation_pairs(graph: PropertyGraph) -> dict[str, set[tuple[str, str]]]:
        pairs: dict[str, set[tuple[str, str]]] = defaultdict(set)
        for edge in graph.edges():
            pairs[edge.label].add((edge.src, edge.dst))
        return dict(pairs)

    def _implications(
        self, pairs: dict[str, set[tuple[str, str]]]
    ) -> list[HornRule]:
        rules: list[HornRule] = []
        labels = sorted(pairs)
        for body_label in labels:
            body_pairs = pairs[body_label]
            inverted = {(dst, src) for src, dst in body_pairs}
            for head_label in labels:
                if head_label == body_label:
                    continue
                head_pairs = pairs[head_label]
                for inverse, candidate in ((False, body_pairs),
                                           (True, inverted)):
                    support = len(candidate & head_pairs)
                    rule = HornRule(
                        body=(body_label,), head=head_label,
                        inverse=inverse, support=support,
                        body_size=len(body_pairs),
                        head_size=len(head_pairs),
                    )
                    if self._passes(rule):
                        rules.append(rule)
        return rules

    def _chains(
        self,
        graph: PropertyGraph,
        pairs: dict[str, set[tuple[str, str]]],
    ) -> list[HornRule]:
        # adjacency maps for the join: label -> src -> [dst]
        out_map: dict[str, dict[str, list[str]]] = {}
        for label, label_pairs in pairs.items():
            mapping: dict[str, list[str]] = defaultdict(list)
            for src, dst in label_pairs:
                mapping[src].append(dst)
            out_map[label] = dict(mapping)

        labels = sorted(pairs)
        rules: list[HornRule] = []
        for first in labels:
            for second in labels:
                joined: set[tuple[str, str]] = set()
                budget = MAX_JOIN_PAIRS
                truncated = False
                for src, mids in out_map[first].items():
                    for mid in mids:
                        for dst in out_map[second].get(mid, ()):
                            joined.add((src, dst))
                            budget -= 1
                            if budget <= 0:
                                truncated = True
                                break
                        if truncated:
                            break
                    if truncated:
                        break
                if not joined:
                    continue
                for head in labels:
                    if head in (first, second) and first == second:
                        continue
                    head_pairs = pairs[head]
                    support = len(joined & head_pairs)
                    rule = HornRule(
                        body=(first, second), head=head, inverse=False,
                        support=support, body_size=len(joined),
                        head_size=len(head_pairs),
                    )
                    if self._passes(rule):
                        rules.append(rule)
        return rules

    def _passes(self, rule: HornRule) -> bool:
        return (
            rule.support >= self.config.min_support
            and rule.head_coverage >= self.config.min_head_coverage
            and rule.confidence >= self.config.min_confidence
        )
