"""Render mined rules as Neo4j 5 constraint DDL.

Neo4j can natively *enforce* a subset of the rule taxonomy via schema
constraints; for those kinds the library emits ready-to-run
``CREATE CONSTRAINT`` statements, so a rule mined here can be installed
on a production database.  Kinds outside Neo4j's constraint language
fall back to the check query, packaged as a comment block suitable for a
scheduled quality job.
"""

from __future__ import annotations

from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.translator import MetricQueries


def _constraint_name(rule: ConsistencyRule, suffix: str) -> str:
    base = (rule.label or rule.edge_label or "rule").lower()
    keys = "_".join(rule.properties) if rule.properties else suffix
    return f"{base}_{keys}_{suffix}"


def rule_to_neo4j_ddl(rule: ConsistencyRule) -> str | None:
    """A ``CREATE CONSTRAINT`` statement for ``rule``, or None.

    Covered kinds: UNIQUENESS (uniqueness constraint), PROPERTY_EXISTS
    (node property existence), EDGE_PROP_EXISTS (relationship property
    existence).  Other kinds have no Neo4j constraint counterpart.
    """
    if rule.kind is RuleKind.UNIQUENESS and rule.label:
        key = rule.properties[0]
        name = _constraint_name(rule, "unique")
        return (
            f"CREATE CONSTRAINT {name} IF NOT EXISTS "
            f"FOR (n:{rule.label}) REQUIRE n.{key} IS UNIQUE;"
        )
    if rule.kind is RuleKind.PROPERTY_EXISTS and rule.label:
        statements = []
        for key in rule.properties:
            name = f"{rule.label.lower()}_{key}_exists"
            statements.append(
                f"CREATE CONSTRAINT {name} IF NOT EXISTS "
                f"FOR (n:{rule.label}) REQUIRE n.{key} IS NOT NULL;"
            )
        return "\n".join(statements)
    if rule.kind is RuleKind.EDGE_PROP_EXISTS and rule.edge_label:
        statements = []
        for key in rule.properties:
            name = f"{rule.edge_label.lower()}_{key}_exists"
            statements.append(
                f"CREATE CONSTRAINT {name} IF NOT EXISTS "
                f"FOR ()-[r:{rule.edge_label}]-() "
                f"REQUIRE r.{key} IS NOT NULL;"
            )
        return "\n".join(statements)
    return None


def rule_to_quality_check(
    rule: ConsistencyRule, queries: MetricQueries
) -> str:
    """A commented quality-check block for kinds Neo4j cannot enforce."""
    header = f"// consistency rule: {rule.text}"
    violations = queries.violations or queries.check
    return f"{header}\n// expected result: no rows\n{violations};"


def export_rules(
    rules_with_queries: list[tuple[ConsistencyRule, MetricQueries]],
) -> str:
    """Render a full export: constraints first, checks after."""
    constraints: list[str] = []
    checks: list[str] = []
    for rule, queries in rules_with_queries:
        ddl = rule_to_neo4j_ddl(rule)
        if ddl is not None:
            constraints.append(ddl)
        else:
            checks.append(rule_to_quality_check(rule, queries))
    sections = []
    if constraints:
        sections.append(
            "// --- enforceable as Neo4j constraints ---\n"
            + "\n".join(constraints)
        )
    if checks:
        sections.append(
            "// --- scheduled quality checks (no constraint "
            "counterpart) ---\n" + "\n\n".join(checks)
        )
    return "\n\n".join(sections)
