"""Consistency-rule model, NL round-trip, translation and deduplication."""

from repro.rules.dedup import (
    combine_window_rules,
    deduplicate,
    merge_property_exists,
)
from repro.rules.model import (
    COMPLEX_KINDS,
    SIMPLE_KINDS,
    ConsistencyRule,
    RuleKind,
    RuleSet,
)
from repro.rules.neo4j_ddl import (
    export_rules,
    rule_to_neo4j_ddl,
    rule_to_quality_check,
)
from repro.rules.nl import (
    from_natural_language,
    parse_rule_list,
    to_natural_language,
)
from repro.rules.translator import (
    MetricQueries,
    RuleTranslator,
    UntranslatableRuleError,
)

__all__ = [
    "COMPLEX_KINDS",
    "ConsistencyRule",
    "MetricQueries",
    "RuleKind",
    "RuleSet",
    "RuleTranslator",
    "SIMPLE_KINDS",
    "UntranslatableRuleError",
    "combine_window_rules",
    "deduplicate",
    "export_rules",
    "from_natural_language",
    "merge_property_exists",
    "parse_rule_list",
    "rule_to_neo4j_ddl",
    "rule_to_quality_check",
    "to_natural_language",
]
