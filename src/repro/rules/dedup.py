"""Cross-window rule deduplication and merging.

The sliding-window pipeline prompts the LLM once per window and then
"the rules generated from each window are combined to create a
comprehensive set of rules that apply to the entire graph" (§3.1.1).
Combination means: drop exact duplicates (same signature), and merge
PROPERTY_EXISTS rules over the same label into one multi-property rule
when requested (the paper's example rule covers *date and stage* at once).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Optional

from repro.analysis import StaticAnalyzer, implies, query_parts
from repro.graph.schema import GraphSchema
from repro.rules.model import ConsistencyRule, RuleKind, RuleSet
from repro.rules.nl import to_natural_language
from repro.rules.translator import RuleTranslator, UntranslatableRuleError


def deduplicate(
    rules: list[ConsistencyRule],
    schema: Optional[GraphSchema] = None,
) -> list[ConsistencyRule]:
    """Drop duplicate rules; first occurrence wins.

    The field signature catches verbatim repeats but counted
    alpha-renamed / endpoint-permuted rules as distinct — e.g. the same
    edge constraint mined from two windows with the src/dst labels
    written in opposite orders.  When a ``schema`` is provided, each
    rule is additionally keyed by the analyzer's canonical form of its
    translated check query, which erases variable naming and edge
    orientation; rules the translator cannot handle fall back to the
    field signature alone.
    """
    semantic_keys: set[str] = set()
    translator = RuleTranslator(schema) if schema is not None else None
    analyzer = StaticAnalyzer(schema) if schema is not None else None
    ruleset = RuleSet()
    output: list[ConsistencyRule] = []
    for rule in rules:
        if not ruleset.add(rule):
            continue
        if translator is not None:
            key = _semantic_key(rule, translator, analyzer)
            if key is not None:
                if key in semantic_keys:
                    continue
                semantic_keys.add(key)
        output.append(rule)
    return output


def _semantic_key(
    rule: ConsistencyRule, translator: RuleTranslator, analyzer
) -> Optional[str]:
    """Canonical signature of the rule's check query, None when unknown."""
    try:
        queries = translator.translate(rule)
    except UntranslatableRuleError:
        return None
    return analyzer.signature(queries.check)


def prune_implied(
    rules: list[ConsistencyRule],
    schema: GraphSchema,
) -> list[ConsistencyRule]:
    """Drop rules provably implied by a strictly-stronger survivor.

    For each pair, the rules' translated *satisfy* queries are compared
    with :func:`repro.analysis.implication.implies`: when every element
    satisfying rule A provably satisfies rule B, B adds nothing and is
    pruned.  The survivor records the pruned texts in ``implied_by`` —
    the provenance chain transfers, so A ⇒ B ⇒ C leaves A carrying both.
    Mutually-implied (equivalent) rules keep the earlier occurrence.
    Rules the translator or the implication engine cannot model are
    never pruned.
    """
    translator = RuleTranslator(schema)
    parts = []
    for rule in rules:
        try:
            satisfy = translator.translate(rule).satisfy
        except UntranslatableRuleError:
            parts.append(None)
            continue
        parts.append(query_parts(satisfy))

    kept = [True] * len(rules)
    subsumed: dict[int, list[str]] = {}
    for i in range(len(rules)):
        if not kept[i] or parts[i] is None:
            continue
        for j in range(len(rules)):
            if j == i or not kept[j] or parts[j] is None:
                continue
            if not implies(parts[i], parts[j]):
                continue
            if j < i and implies(parts[j], parts[i]):
                continue             # equivalent: the earlier index wins
            kept[j] = False
            chain = subsumed.setdefault(i, [])
            chain.append(rules[j].text or rules[j].describe())
            chain.extend(subsumed.pop(j, []))

    output: list[ConsistencyRule] = []
    for index, rule in enumerate(rules):
        if not kept[index]:
            continue
        if index in subsumed:
            rule = dataclasses.replace(
                rule,
                implied_by=rule.implied_by + tuple(subsumed[index]),
            )
        output.append(rule)
    return output


def merge_property_exists(
    rules: list[ConsistencyRule],
) -> list[ConsistencyRule]:
    """Fuse same-label PROPERTY_EXISTS rules into multi-property rules.

    Other rules pass through unchanged, keeping their relative order at
    the position of the first fused member.
    """
    by_label: dict[str, list[ConsistencyRule]] = defaultdict(list)
    for rule in rules:
        if rule.kind is RuleKind.PROPERTY_EXISTS and rule.label:
            by_label[rule.label].append(rule)

    fused: dict[str, ConsistencyRule] = {}
    for label, members in by_label.items():
        if len(members) == 1:
            fused[label] = members[0]
            continue
        properties = tuple(
            dict.fromkeys(
                key for member in members for key in member.properties
            )
        )
        merged = ConsistencyRule(
            kind=RuleKind.PROPERTY_EXISTS,
            text="",
            label=label,
            properties=properties,
            provenance=members[0].provenance,
        )
        fused[label] = ConsistencyRule(
            kind=merged.kind,
            text=to_natural_language(merged),
            label=merged.label,
            properties=merged.properties,
            provenance=merged.provenance,
        )

    output: list[ConsistencyRule] = []
    emitted: set[str] = set()
    for rule in rules:
        if rule.kind is RuleKind.PROPERTY_EXISTS and rule.label in fused:
            if rule.label not in emitted:
                emitted.add(rule.label)
                output.append(fused[rule.label])
            continue
        output.append(rule)
    return output


def combine_window_rules(
    per_window: list[list[ConsistencyRule]],
    merge_existence: bool = True,
    schema: Optional[GraphSchema] = None,
) -> list[ConsistencyRule]:
    """The §3.1.1 combination step: concatenate, dedup, optionally merge."""
    flat = [rule for window in per_window for rule in window]
    unique = deduplicate(flat, schema=schema)
    if merge_existence:
        unique = merge_property_exists(unique)
    return unique
