"""Cross-window rule deduplication and merging.

The sliding-window pipeline prompts the LLM once per window and then
"the rules generated from each window are combined to create a
comprehensive set of rules that apply to the entire graph" (§3.1.1).
Combination means: drop exact duplicates (same signature), and merge
PROPERTY_EXISTS rules over the same label into one multi-property rule
when requested (the paper's example rule covers *date and stage* at once).
"""

from __future__ import annotations

from collections import defaultdict

from repro.rules.model import ConsistencyRule, RuleKind, RuleSet
from repro.rules.nl import to_natural_language


def deduplicate(rules: list[ConsistencyRule]) -> list[ConsistencyRule]:
    """Drop rules whose signature repeats; first occurrence wins."""
    ruleset = RuleSet()
    ruleset.extend(rules)
    return list(ruleset)


def merge_property_exists(
    rules: list[ConsistencyRule],
) -> list[ConsistencyRule]:
    """Fuse same-label PROPERTY_EXISTS rules into multi-property rules.

    Other rules pass through unchanged, keeping their relative order at
    the position of the first fused member.
    """
    by_label: dict[str, list[ConsistencyRule]] = defaultdict(list)
    for rule in rules:
        if rule.kind is RuleKind.PROPERTY_EXISTS and rule.label:
            by_label[rule.label].append(rule)

    fused: dict[str, ConsistencyRule] = {}
    for label, members in by_label.items():
        if len(members) == 1:
            fused[label] = members[0]
            continue
        properties = tuple(
            dict.fromkeys(
                key for member in members for key in member.properties
            )
        )
        merged = ConsistencyRule(
            kind=RuleKind.PROPERTY_EXISTS,
            text="",
            label=label,
            properties=properties,
            provenance=members[0].provenance,
        )
        fused[label] = ConsistencyRule(
            kind=merged.kind,
            text=to_natural_language(merged),
            label=merged.label,
            properties=merged.properties,
            provenance=merged.provenance,
        )

    output: list[ConsistencyRule] = []
    emitted: set[str] = set()
    for rule in rules:
        if rule.kind is RuleKind.PROPERTY_EXISTS and rule.label in fused:
            if rule.label not in emitted:
                emitted.add(rule.label)
                output.append(fused[rule.label])
            continue
        output.append(rule)
    return output


def combine_window_rules(
    per_window: list[list[ConsistencyRule]],
    merge_existence: bool = True,
) -> list[ConsistencyRule]:
    """The §3.1.1 combination step: concatenate, dedup, optionally merge."""
    flat = [rule for window in per_window for rule in window]
    unique = deduplicate(flat)
    if merge_existence:
        unique = merge_property_exists(unique)
    return unique
