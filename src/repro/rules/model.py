"""Consistency-rule model.

The study asks LLMs for rules "in terms of graph functional and entity
dependency rules" but observes (§4.5) that what comes back is mostly
schema-level constraints, with occasional temporal and multi-hop pattern
rules.  This taxonomy covers every rule type the paper reports:

================  ====================================================
Kind              Paper example
================  ====================================================
PROPERTY_EXISTS   "Each Match node should have a date and stage property"
UNIQUENESS        "Each tweet node should have a unique id property"
PRIMARY_KEY       "Unique Match identifier within a Tournament"
VALUE_DOMAIN      "The owned property should only be True or False"
VALUE_FORMAT      "The domain property should … match domain format"
ENDPOINT          "POSTS edges must connect a User to a Tweet"
MANDATORY_EDGE    "Every tweet must be associated with a valid user"
NO_SELF_LOOP      "Users cannot follow themselves"
TEMPORAL_ORDER    "A retweet can occur only after the original tweet"
TEMPORAL_UNIQUE   "A player cannot score two goals in the same minute
                   of the same match"
PATTERN           "A player should be associated with a squad, and that
                   squad should belong to the tournament for which the
                   player has played a match"
EDGE_PROP_EXISTS  "Each SCORED_GOAL relationship should have a minute"
================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class RuleKind(Enum):
    """Taxonomy of consistency rules the pipeline can mine."""

    PROPERTY_EXISTS = "property_exists"
    UNIQUENESS = "uniqueness"
    PRIMARY_KEY = "primary_key"
    VALUE_DOMAIN = "value_domain"
    VALUE_FORMAT = "value_format"
    ENDPOINT = "endpoint"
    MANDATORY_EDGE = "mandatory_edge"
    NO_SELF_LOOP = "no_self_loop"
    TEMPORAL_ORDER = "temporal_order"
    TEMPORAL_UNIQUE = "temporal_unique"
    PATTERN = "pattern"
    EDGE_PROP_EXISTS = "edge_prop_exists"


#: Kinds the paper calls "simple" (schema-based) vs "complex".
SIMPLE_KINDS = frozenset({
    RuleKind.PROPERTY_EXISTS,
    RuleKind.UNIQUENESS,
    RuleKind.VALUE_DOMAIN,
    RuleKind.VALUE_FORMAT,
    RuleKind.ENDPOINT,
    RuleKind.EDGE_PROP_EXISTS,
})

COMPLEX_KINDS = frozenset({
    RuleKind.PRIMARY_KEY,
    RuleKind.MANDATORY_EDGE,
    RuleKind.NO_SELF_LOOP,
    RuleKind.TEMPORAL_ORDER,
    RuleKind.TEMPORAL_UNIQUE,
    RuleKind.PATTERN,
})


@dataclass(frozen=True)
class ConsistencyRule:
    """One mined consistency rule.

    The typed fields below parameterise every kind in the taxonomy; which
    fields are meaningful depends on ``kind`` (see
    :meth:`signature` and the translator).  ``text`` is the natural-language
    statement, which is what an LLM actually emits.
    """

    kind: RuleKind
    text: str
    label: Optional[str] = None            # primary node label
    properties: tuple[str, ...] = ()       # property key(s) concerned
    edge_label: Optional[str] = None       # relationship type concerned
    src_label: Optional[str] = None        # endpoint rules
    dst_label: Optional[str] = None
    allowed_values: tuple = ()             # VALUE_DOMAIN
    pattern_regex: Optional[str] = None    # VALUE_FORMAT
    scope_edge_label: Optional[str] = None  # PRIMARY_KEY scope, PATTERN hop 2
    scope_label: Optional[str] = None       # PRIMARY_KEY scoping node label
    time_property: Optional[str] = None    # TEMPORAL rules
    provenance: str = ""                   # e.g. "llama3/window-3"
    #: texts of strictly-weaker rules this rule subsumed (implication
    #: pruning provenance); excluded from the signature like provenance
    implied_by: tuple[str, ...] = ()

    def signature(self) -> tuple:
        """Identity of the rule *content*, ignoring text and provenance.

        Two rules with the same signature are duplicates even when the
        LLM phrased them differently or found them in different windows.
        """
        return (
            self.kind,
            self.label,
            tuple(sorted(self.properties)),
            self.edge_label,
            self.src_label,
            self.dst_label,
            tuple(self.allowed_values),
            self.pattern_regex,
            self.scope_edge_label,
            self.scope_label,
            self.time_property,
        )

    @property
    def is_complex(self) -> bool:
        return self.kind in COMPLEX_KINDS

    def describe(self) -> str:
        return f"[{self.kind.value}] {self.text}"

    def to_dict(self) -> dict:
        """JSON-serialisable record; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind.value,
            "text": self.text,
            "label": self.label,
            "properties": list(self.properties),
            "edge_label": self.edge_label,
            "src_label": self.src_label,
            "dst_label": self.dst_label,
            "allowed_values": list(self.allowed_values),
            "pattern_regex": self.pattern_regex,
            "scope_edge_label": self.scope_edge_label,
            "scope_label": self.scope_label,
            "time_property": self.time_property,
            "provenance": self.provenance,
            "implied_by": list(self.implied_by),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConsistencyRule":
        """Rebuild a rule from :meth:`to_dict` output."""
        return cls(
            kind=RuleKind(payload["kind"]),
            text=payload["text"],
            label=payload.get("label"),
            properties=tuple(payload.get("properties", ())),
            edge_label=payload.get("edge_label"),
            src_label=payload.get("src_label"),
            dst_label=payload.get("dst_label"),
            allowed_values=tuple(payload.get("allowed_values", ())),
            pattern_regex=payload.get("pattern_regex"),
            scope_edge_label=payload.get("scope_edge_label"),
            scope_label=payload.get("scope_label"),
            time_property=payload.get("time_property"),
            provenance=payload.get("provenance", ""),
            implied_by=tuple(payload.get("implied_by", ())),
        )


@dataclass
class RuleSet:
    """A deduplicated, order-preserving collection of rules."""

    rules: list[ConsistencyRule] = field(default_factory=list)

    def add(self, rule: ConsistencyRule) -> bool:
        """Add ``rule`` unless an equivalent rule is present."""
        signature = rule.signature()
        if any(existing.signature() == signature for existing in self.rules):
            return False
        self.rules.append(rule)
        return True

    def extend(self, rules: list[ConsistencyRule]) -> int:
        """Add many rules; returns how many were new."""
        return sum(1 for rule in rules if self.add(rule))

    def by_kind(self, kind: RuleKind) -> list[ConsistencyRule]:
        return [rule for rule in self.rules if rule.kind == kind]

    def complex_rules(self) -> list[ConsistencyRule]:
        return [rule for rule in self.rules if rule.is_complex]

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)
