"""Natural-language rendering and parsing of consistency rules.

The pipeline's contract (Figure 1) is that rules travel between the two
LLM calls *as natural language* — "this two-step procedure can ensure
clarity to those who may not be familiar with Cypher".  This module
defines the canonical English phrasing for every rule kind (used by the
simulated LLM when it emits rules) and the inverse parser (used by the
pipeline when it reads completions back).  The phrasing follows the
paper's own examples, e.g. *"Each match node should have a date and stage
property"* or *"The owned property should only be True or False"*.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.rules.model import ConsistencyRule, RuleKind


def _join_names(names: tuple[str, ...]) -> str:
    if len(names) == 1:
        return names[0]
    return ", ".join(names[:-1]) + " and " + names[-1]


def _split_names(text: str) -> tuple[str, ...]:
    parts = re.split(r",\s*|\s+and\s+", text.strip())
    return tuple(part for part in parts if part)


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


def _parse_value(text: str) -> object:
    text = text.strip()
    if text == "True":
        return True
    if text == "False":
        return False
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def to_natural_language(rule: ConsistencyRule) -> str:
    """Render ``rule`` as one canonical English sentence."""
    kind = rule.kind
    if kind is RuleKind.PROPERTY_EXISTS:
        return (
            f"Each {rule.label} node should have a "
            f"{_join_names(rule.properties)} property."
        )
    if kind is RuleKind.EDGE_PROP_EXISTS:
        return (
            f"Each {rule.edge_label} relationship should have a "
            f"{_join_names(rule.properties)} property."
        )
    if kind is RuleKind.UNIQUENESS:
        return (
            f"Each {rule.label} node should have a unique "
            f"{rule.properties[0]} property."
        )
    if kind is RuleKind.PRIMARY_KEY:
        return (
            f"The {rule.properties[0]} property of {rule.label} nodes "
            f"must be unique within a {rule.scope_label} "
            f"(via {rule.scope_edge_label})."
        )
    if kind is RuleKind.VALUE_DOMAIN:
        values = " or ".join(
            _format_value(value) for value in rule.allowed_values
        )
        return (
            f"The {rule.properties[0]} property of {rule.label} nodes "
            f"should only be {values}."
        )
    if kind is RuleKind.VALUE_FORMAT:
        return (
            f"The {rule.properties[0]} property of {rule.label} nodes "
            f"should be a string value matching the format "
            f"'{rule.pattern_regex}'."
        )
    if kind is RuleKind.ENDPOINT:
        return (
            f"Every {rule.edge_label} relationship should connect a "
            f"{rule.src_label} node to a {rule.dst_label} node."
        )
    if kind is RuleKind.MANDATORY_EDGE:
        if rule.src_label == rule.label:
            return (
                f"Every {rule.label} node must have an outgoing "
                f"{rule.edge_label} relationship to a {rule.dst_label} node."
            )
        return (
            f"Every {rule.label} node must have an incoming "
            f"{rule.edge_label} relationship from a {rule.src_label} node."
        )
    if kind is RuleKind.NO_SELF_LOOP:
        subject = f"A {rule.label} node" if rule.label else "A node"
        return (
            f"{subject} cannot have a {rule.edge_label} relationship "
            "to itself."
        )
    if kind is RuleKind.TEMPORAL_ORDER:
        return (
            f"For every {rule.edge_label} relationship, the "
            f"{rule.src_label} node's {rule.time_property} must be later "
            f"than the {rule.dst_label} node's {rule.time_property}."
        )
    if kind is RuleKind.TEMPORAL_UNIQUE:
        src = rule.src_label or "node"
        dst = rule.dst_label or "node"
        return (
            f"No two {rule.edge_label} relationships between the same "
            f"{src} and {dst} should have the same "
            f"{rule.time_property} property."
        )
    if kind is RuleKind.PATTERN:
        return (
            f"Each {rule.label} connected to a {rule.dst_label} via "
            f"{rule.edge_label} requires that the {rule.dst_label} is "
            f"linked to a {rule.scope_label} via {rule.scope_edge_label}."
        )
    raise ValueError(f"no phrasing for rule kind {kind!r}")


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
_NAME = r"[A-Za-z_][A-Za-z0-9_]*"
_NAMES = r"[A-Za-z0-9_,\s]+?"
_PARSERS: list[tuple[re.Pattern, RuleKind]] = [
    (
        re.compile(
            rf"^Each ({_NAME}) node should have a unique ({_NAME}) property\.$"
        ),
        RuleKind.UNIQUENESS,
    ),
    (
        re.compile(
            rf"^Each ({_NAME}) node should have a ({_NAMES}) property\.$"
        ),
        RuleKind.PROPERTY_EXISTS,
    ),
    (
        re.compile(
            rf"^Each ({_NAME}) relationship should have a ({_NAMES}) "
            r"property\.$"
        ),
        RuleKind.EDGE_PROP_EXISTS,
    ),
    (
        re.compile(
            rf"^The ({_NAME}) property of ({_NAME}) nodes must be unique "
            rf"within a ({_NAME}) \(via ({_NAME})\)\.$"
        ),
        RuleKind.PRIMARY_KEY,
    ),
    (
        re.compile(
            rf"^The ({_NAME}) property of ({_NAME}) nodes should only be "
            r"(.+)\.$"
        ),
        RuleKind.VALUE_DOMAIN,
    ),
    (
        re.compile(
            rf"^The ({_NAME}) property of ({_NAME}) nodes should be a "
            r"string value matching the format '(.+)'\.$"
        ),
        RuleKind.VALUE_FORMAT,
    ),
    (
        re.compile(
            rf"^Every ({_NAME}) relationship should connect a ({_NAME}) "
            rf"node to a ({_NAME}) node\.$"
        ),
        RuleKind.ENDPOINT,
    ),
    (
        re.compile(
            rf"^Every ({_NAME}) node must have an (outgoing|incoming) "
            rf"({_NAME}) relationship (?:to|from) a ({_NAME}) node\.$"
        ),
        RuleKind.MANDATORY_EDGE,
    ),
    (
        re.compile(
            rf"^A (?:({_NAME}) )?node cannot have a ({_NAME}) relationship "
            r"to itself\.$"
        ),
        RuleKind.NO_SELF_LOOP,
    ),
    (
        re.compile(
            rf"^For every ({_NAME}) relationship, the ({_NAME}) node's "
            rf"({_NAME}) must be later than the ({_NAME}) node's "
            rf"({_NAME})\.$"
        ),
        RuleKind.TEMPORAL_ORDER,
    ),
    (
        re.compile(
            rf"^No two ({_NAME}) relationships between the same ({_NAME}) "
            rf"and ({_NAME}) should have the same ({_NAME}) property\.$"
        ),
        RuleKind.TEMPORAL_UNIQUE,
    ),
    (
        re.compile(
            rf"^Each ({_NAME}) connected to a ({_NAME}) via ({_NAME}) "
            rf"requires that the ({_NAME}) is linked to a ({_NAME}) via "
            rf"({_NAME})\.$"
        ),
        RuleKind.PATTERN,
    ),
]


def from_natural_language(
    sentence: str, provenance: str = ""
) -> Optional[ConsistencyRule]:
    """Parse one sentence back into a rule; None if no template matches."""
    text = sentence.strip()
    for pattern, kind in _PARSERS:
        match = pattern.match(text)
        if match is None:
            continue
        groups = match.groups()
        if kind is RuleKind.UNIQUENESS:
            return ConsistencyRule(
                kind=kind, text=text, label=groups[0],
                properties=(groups[1],), provenance=provenance,
            )
        if kind is RuleKind.PROPERTY_EXISTS:
            return ConsistencyRule(
                kind=kind, text=text, label=groups[0],
                properties=_split_names(groups[1]), provenance=provenance,
            )
        if kind is RuleKind.EDGE_PROP_EXISTS:
            return ConsistencyRule(
                kind=kind, text=text, edge_label=groups[0],
                properties=_split_names(groups[1]), provenance=provenance,
            )
        if kind is RuleKind.PRIMARY_KEY:
            return ConsistencyRule(
                kind=kind, text=text, label=groups[1],
                properties=(groups[0],), scope_label=groups[2],
                scope_edge_label=groups[3], provenance=provenance,
            )
        if kind is RuleKind.VALUE_DOMAIN:
            values = tuple(
                _parse_value(part) for part in groups[2].split(" or ")
            )
            return ConsistencyRule(
                kind=kind, text=text, label=groups[1],
                properties=(groups[0],), allowed_values=values,
                provenance=provenance,
            )
        if kind is RuleKind.VALUE_FORMAT:
            return ConsistencyRule(
                kind=kind, text=text, label=groups[1],
                properties=(groups[0],), pattern_regex=groups[2],
                provenance=provenance,
            )
        if kind is RuleKind.ENDPOINT:
            return ConsistencyRule(
                kind=kind, text=text, edge_label=groups[0],
                src_label=groups[1], dst_label=groups[2],
                provenance=provenance,
            )
        if kind is RuleKind.MANDATORY_EDGE:
            label, direction, edge, other = groups
            if direction == "outgoing":
                src, dst = label, other
            else:
                src, dst = other, label
            return ConsistencyRule(
                kind=kind, text=text, label=label, edge_label=edge,
                src_label=src, dst_label=dst, provenance=provenance,
            )
        if kind is RuleKind.NO_SELF_LOOP:
            return ConsistencyRule(
                kind=kind, text=text, label=groups[0],
                edge_label=groups[1], provenance=provenance,
            )
        if kind is RuleKind.TEMPORAL_ORDER:
            edge, src, time_property, dst, _time2 = groups
            return ConsistencyRule(
                kind=kind, text=text, edge_label=edge, src_label=src,
                dst_label=dst, time_property=time_property,
                provenance=provenance,
            )
        if kind is RuleKind.TEMPORAL_UNIQUE:
            return ConsistencyRule(
                kind=kind, text=text, edge_label=groups[0],
                src_label=groups[1], dst_label=groups[2],
                time_property=groups[3], provenance=provenance,
            )
        if kind is RuleKind.PATTERN:
            return ConsistencyRule(
                kind=kind, text=text, label=groups[0],
                dst_label=groups[1], edge_label=groups[2],
                scope_label=groups[4], scope_edge_label=groups[5],
                provenance=provenance,
            )
    return None


_LINE_PREFIX = re.compile(r"^\s*(?:\d+[.)]\s*|[-*]\s*)?")


def parse_rule_list(
    completion: str, provenance: str = ""
) -> tuple[list[ConsistencyRule], list[str]]:
    """Parse an LLM completion into rules.

    Returns ``(rules, unparsed_lines)``; numbering and bullet markers are
    tolerated, blank lines skipped.
    """
    rules: list[ConsistencyRule] = []
    unparsed: list[str] = []
    for raw_line in completion.splitlines():
        line = _LINE_PREFIX.sub("", raw_line).strip()
        if not line:
            continue
        rule = from_natural_language(line, provenance=provenance)
        if rule is not None:
            rules.append(rule)
        else:
            unparsed.append(line)
    return rules, unparsed
