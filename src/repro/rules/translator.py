"""Ground-truth translation of consistency rules into Cypher.

For each rule the translator emits:

* ``check``      — the support-counting query in the style the paper shows
                   (``RETURN COUNT(*) AS support``);
* ``relevant``   — count of all facts for the rule's head relation
                   (coverage denominator, §4.2);
* ``body``       — count of elements matching the rule body
                   (confidence denominator);
* ``satisfy``    — count of elements satisfying body *and* head (support);
* ``violations`` — a query returning the offending elements, for
                   interactive use.

Patterns are oriented against the :class:`~repro.graph.schema.GraphSchema`
so that the *correct* direction is used — the simulated LLM may then flip
it (the paper's first error category), and the corrector restores it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cypher.render import render_literal
from repro.graph.schema import GraphSchema
from repro.rules.model import ConsistencyRule, RuleKind


class UntranslatableRuleError(ValueError):
    """The rule is missing the fields its kind requires."""

    def __init__(self, rule: ConsistencyRule, missing: str) -> None:
        super().__init__(
            f"rule kind {rule.kind.value} requires {missing}: {rule.text!r}"
        )
        self.rule = rule


@dataclass(frozen=True)
class MetricQueries:
    """The query bundle computed for one rule."""

    check: str
    relevant: str
    body: str
    satisfy: str
    violations: Optional[str] = None


def _require(rule: ConsistencyRule, **fields: object) -> None:
    for name, value in fields.items():
        if not value:
            raise UntranslatableRuleError(rule, name)


class RuleTranslator:
    """Translates rules to Cypher, orienting edges against a schema."""

    def __init__(self, schema: GraphSchema) -> None:
        self.schema = schema

    # ------------------------------------------------------------------
    def translate(self, rule: ConsistencyRule) -> MetricQueries:
        handler = {
            RuleKind.PROPERTY_EXISTS: self._property_exists,
            RuleKind.EDGE_PROP_EXISTS: self._edge_prop_exists,
            RuleKind.UNIQUENESS: self._uniqueness,
            RuleKind.PRIMARY_KEY: self._primary_key,
            RuleKind.VALUE_DOMAIN: self._value_domain,
            RuleKind.VALUE_FORMAT: self._value_format,
            RuleKind.ENDPOINT: self._endpoint,
            RuleKind.MANDATORY_EDGE: self._mandatory_edge,
            RuleKind.NO_SELF_LOOP: self._no_self_loop,
            RuleKind.TEMPORAL_ORDER: self._temporal_order,
            RuleKind.TEMPORAL_UNIQUE: self._temporal_unique,
            RuleKind.PATTERN: self._pattern,
        }[rule.kind]
        return handler(rule)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _oriented(
        self, left_label: str, edge_label: str, right_label: str
    ) -> tuple[str, str]:
        """Return (src_label, dst_label) matching the data's direction.

        Prefers ``left -> right``; falls back to the reverse when only
        that occurs; defaults to the requested order when the edge is
        absent altogether (the metric queries will simply match nothing).
        """
        if self.schema.edge_connects(left_label, edge_label, right_label):
            return left_label, right_label
        if self.schema.edge_connects(right_label, edge_label, left_label):
            return right_label, left_label
        return left_label, right_label

    @staticmethod
    def _count(pattern: str, where: str | None, alias: str) -> str:
        where_part = f" WHERE {where}" if where else ""
        return f"MATCH {pattern}{where_part} RETURN count(*) AS {alias}"

    # ------------------------------------------------------------------
    # per-kind translators
    # ------------------------------------------------------------------
    def _property_exists(self, rule: ConsistencyRule) -> MetricQueries:
        _require(rule, label=rule.label, properties=rule.properties)
        pattern = f"(n:{rule.label})"
        predicate = " AND ".join(
            f"n.{key} IS NOT NULL" for key in rule.properties
        )
        negated = " OR ".join(f"n.{key} IS NULL" for key in rule.properties)
        return MetricQueries(
            check=self._count(pattern, predicate, "support"),
            relevant=self._count(pattern, None, "relevant"),
            body=self._count(pattern, None, "body"),
            satisfy=self._count(pattern, predicate, "satisfy"),
            violations=f"MATCH {pattern} WHERE {negated} RETURN n.id AS id",
        )

    def _edge_prop_exists(self, rule: ConsistencyRule) -> MetricQueries:
        _require(rule, edge_label=rule.edge_label, properties=rule.properties)
        pattern = f"()-[r:{rule.edge_label}]->()"
        predicate = " AND ".join(
            f"r.{key} IS NOT NULL" for key in rule.properties
        )
        negated = " OR ".join(f"r.{key} IS NULL" for key in rule.properties)
        return MetricQueries(
            check=self._count(pattern, predicate, "support"),
            relevant=self._count(pattern, None, "relevant"),
            body=self._count(pattern, None, "body"),
            satisfy=self._count(pattern, predicate, "satisfy"),
            violations=(
                f"MATCH {pattern} WHERE {negated} RETURN id(r) AS id"
            ),
        )

    def _uniqueness(self, rule: ConsistencyRule) -> MetricQueries:
        _require(rule, label=rule.label, properties=rule.properties)
        key = rule.properties[0]
        pattern = f"(n:{rule.label})"
        grouped = (
            f"MATCH {pattern} WHERE n.{key} IS NOT NULL "
            f"WITH n.{key} AS value, count(*) AS occurrences"
        )
        return MetricQueries(
            check=(
                f"{grouped} WHERE occurrences = 1 "
                "RETURN count(*) AS support"
            ),
            relevant=self._count(pattern, None, "relevant"),
            body=self._count(pattern, f"n.{key} IS NOT NULL", "body"),
            satisfy=(
                f"{grouped} WHERE occurrences = 1 "
                "RETURN count(*) AS satisfy"
            ),
            violations=(
                f"{grouped} WHERE occurrences > 1 "
                "RETURN value, occurrences"
            ),
        )

    def _primary_key(self, rule: ConsistencyRule) -> MetricQueries:
        _require(
            rule,
            label=rule.label,
            properties=rule.properties,
            scope_label=rule.scope_label,
            scope_edge_label=rule.scope_edge_label,
        )
        key = rule.properties[0]
        src, dst = self._oriented(
            rule.label, rule.scope_edge_label, rule.scope_label
        )
        if src == rule.label:
            pattern = (
                f"(m:{rule.label})-[:{rule.scope_edge_label}]->"
                f"(s:{rule.scope_label})"
            )
        else:
            pattern = (
                f"(m:{rule.label})<-[:{rule.scope_edge_label}]-"
                f"(s:{rule.scope_label})"
            )
        grouped = (
            f"MATCH {pattern} "
            f"WITH s.id AS scope_id, m.{key} AS value, count(*) AS occurrences"
        )
        return MetricQueries(
            check=(
                f"{grouped} WHERE occurrences = 1 "
                "RETURN count(*) AS support"
            ),
            relevant=self._count(f"(m:{rule.label})", None, "relevant"),
            body=self._count(pattern, None, "body"),
            satisfy=(
                f"{grouped} WHERE occurrences = 1 "
                "RETURN count(*) AS satisfy"
            ),
            violations=(
                f"{grouped} WHERE occurrences > 1 "
                "RETURN scope_id, value, occurrences"
            ),
        )

    def _value_domain(self, rule: ConsistencyRule) -> MetricQueries:
        _require(
            rule,
            label=rule.label,
            properties=rule.properties,
            allowed_values=rule.allowed_values,
        )
        key = rule.properties[0]
        pattern = f"(n:{rule.label})"
        values = ", ".join(
            render_literal(value) for value in rule.allowed_values
        )
        predicate = f"n.{key} IN [{values}]"
        return MetricQueries(
            check=self._count(pattern, predicate, "support"),
            relevant=self._count(pattern, None, "relevant"),
            body=self._count(pattern, f"n.{key} IS NOT NULL", "body"),
            satisfy=self._count(pattern, predicate, "satisfy"),
            violations=(
                f"MATCH {pattern} WHERE n.{key} IS NOT NULL "
                f"AND NOT n.{key} IN [{values}] "
                f"RETURN n.id AS id, n.{key} AS value"
            ),
        )

    def _value_format(self, rule: ConsistencyRule) -> MetricQueries:
        _require(
            rule,
            label=rule.label,
            properties=rule.properties,
            pattern_regex=rule.pattern_regex,
        )
        key = rule.properties[0]
        pattern = f"(n:{rule.label})"
        regex = render_literal(rule.pattern_regex)
        predicate = f"n.{key} =~ {regex}"
        return MetricQueries(
            check=self._count(pattern, predicate, "support"),
            relevant=self._count(pattern, None, "relevant"),
            body=self._count(pattern, f"n.{key} IS NOT NULL", "body"),
            satisfy=self._count(pattern, predicate, "satisfy"),
            violations=(
                f"MATCH {pattern} WHERE n.{key} IS NOT NULL "
                f"AND NOT n.{key} =~ {regex} "
                f"RETURN n.id AS id, n.{key} AS value"
            ),
        )

    def _endpoint(self, rule: ConsistencyRule) -> MetricQueries:
        _require(
            rule,
            edge_label=rule.edge_label,
            src_label=rule.src_label,
            dst_label=rule.dst_label,
        )
        any_pattern = f"()-[r:{rule.edge_label}]->()"
        typed_pattern = (
            f"(a:{rule.src_label})-[r:{rule.edge_label}]->"
            f"(b:{rule.dst_label})"
        )
        return MetricQueries(
            check=self._count(typed_pattern, None, "support"),
            relevant=self._count(any_pattern, None, "relevant"),
            body=self._count(any_pattern, None, "body"),
            satisfy=self._count(typed_pattern, None, "satisfy"),
            violations=(
                f"MATCH (a)-[r:{rule.edge_label}]->(b) "
                f"WHERE NOT (a:{rule.src_label} AND b:{rule.dst_label}) "
                "RETURN id(r) AS id"
            ),
        )

    def _mandatory_edge(self, rule: ConsistencyRule) -> MetricQueries:
        _require(
            rule,
            label=rule.label,
            edge_label=rule.edge_label,
            src_label=rule.src_label,
            dst_label=rule.dst_label,
        )
        pattern = f"(n:{rule.label})"
        if rule.src_label == rule.label:
            other = rule.dst_label
            exists = f"(n)-[:{rule.edge_label}]->(:{other})"
        else:
            other = rule.src_label
            exists = f"(n)<-[:{rule.edge_label}]-(:{other})"
        return MetricQueries(
            check=self._count(pattern, exists, "support"),
            relevant=self._count(pattern, None, "relevant"),
            body=self._count(pattern, None, "body"),
            satisfy=self._count(pattern, exists, "satisfy"),
            violations=(
                f"MATCH {pattern} WHERE NOT {exists} RETURN n.id AS id"
            ),
        )

    def _no_self_loop(self, rule: ConsistencyRule) -> MetricQueries:
        _require(rule, edge_label=rule.edge_label)
        label_part = f":{rule.label}" if rule.label else ""
        pattern = f"(a{label_part})-[r:{rule.edge_label}]->(b{label_part})"
        return MetricQueries(
            check=self._count(pattern, "NOT a = b", "support"),
            relevant=self._count(pattern, None, "relevant"),
            body=self._count(pattern, None, "body"),
            satisfy=self._count(pattern, "NOT a = b", "satisfy"),
            violations=(
                f"MATCH {pattern} WHERE a = b RETURN id(r) AS id"
            ),
        )

    def _temporal_order(self, rule: ConsistencyRule) -> MetricQueries:
        _require(
            rule,
            edge_label=rule.edge_label,
            src_label=rule.src_label,
            dst_label=rule.dst_label,
            time_property=rule.time_property,
        )
        key = rule.time_property
        pattern = (
            f"(a:{rule.src_label})-[r:{rule.edge_label}]->"
            f"(b:{rule.dst_label})"
        )
        both = f"a.{key} IS NOT NULL AND b.{key} IS NOT NULL"
        ordered = f"{both} AND a.{key} >= b.{key}"
        return MetricQueries(
            check=self._count(pattern, ordered, "support"),
            relevant=self._count(
                f"()-[r:{rule.edge_label}]->()", None, "relevant"
            ),
            body=self._count(pattern, both, "body"),
            satisfy=self._count(pattern, ordered, "satisfy"),
            violations=(
                f"MATCH {pattern} WHERE {both} AND a.{key} < b.{key} "
                "RETURN id(r) AS id"
            ),
        )

    def _temporal_unique(self, rule: ConsistencyRule) -> MetricQueries:
        _require(rule, edge_label=rule.edge_label, time_property=rule.time_property)
        key = rule.time_property
        src = f":{rule.src_label}" if rule.src_label else ""
        dst = f":{rule.dst_label}" if rule.dst_label else ""
        pattern = f"(a{src})-[r:{rule.edge_label}]->(b{dst})"
        grouped = (
            f"MATCH {pattern} WHERE r.{key} IS NOT NULL "
            f"WITH a, b, r.{key} AS moment, count(*) AS occurrences"
        )
        return MetricQueries(
            check=(
                f"{grouped} WHERE occurrences = 1 "
                "RETURN count(*) AS support"
            ),
            relevant=self._count(
                f"()-[r:{rule.edge_label}]->()", None, "relevant"
            ),
            body=self._count(pattern, f"r.{key} IS NOT NULL", "body"),
            satisfy=(
                f"{grouped} WHERE occurrences = 1 "
                "RETURN count(*) AS satisfy"
            ),
            violations=(
                f"{grouped} WHERE occurrences > 1 "
                "RETURN a.id AS a, b.id AS b, moment, occurrences"
            ),
        )

    def _pattern(self, rule: ConsistencyRule) -> MetricQueries:
        _require(
            rule,
            label=rule.label,
            edge_label=rule.edge_label,
            dst_label=rule.dst_label,
            scope_edge_label=rule.scope_edge_label,
            scope_label=rule.scope_label,
        )
        src1, dst1 = self._oriented(rule.label, rule.edge_label, rule.dst_label)
        hop1 = (
            f"(n:{rule.label})-[:{rule.edge_label}]->(m:{rule.dst_label})"
            if src1 == rule.label
            else f"(n:{rule.label})<-[:{rule.edge_label}]-(m:{rule.dst_label})"
        )
        src2, dst2 = self._oriented(
            rule.dst_label, rule.scope_edge_label, rule.scope_label
        )
        closure = (
            f"(m)-[:{rule.scope_edge_label}]->(:{rule.scope_label})"
            if src2 == rule.dst_label
            else f"(m)<-[:{rule.scope_edge_label}]-(:{rule.scope_label})"
        )
        return MetricQueries(
            check=self._count(hop1, closure, "support"),
            relevant=self._count(f"(n:{rule.label})", None, "relevant"),
            body=self._count(hop1, None, "body"),
            satisfy=self._count(hop1, closure, "satisfy"),
            violations=(
                f"MATCH {hop1} WHERE NOT {closure} "
                "RETURN n.id AS id, m.id AS mid"
            ),
        )
