"""LLM fault injection: Cypher errors and transient call failures.

§4.4 buckets the LLMs' wrong queries into: (1) flipped relationship
directions, (2) references to properties that do not exist, (3) syntax
errors such as ``=`` where ``=~`` was needed or a mangled regex
quantifier (``(2,)`` instead of ``{2,}``).  The injector applies at most
one fault per query, with per-model rates, on a seeded RNG — so the
whole study's error census is reproducible and lands near the paper's
observation of ~5 direction flips overall.

Separately from *wrong answers*, real deployments also see *failed
calls*: timeouts, 429s, connection resets.  :class:`TransientLLMError`
models that class of failure, and :class:`TransientFaultInjector` /
:class:`FlakyLLM` inject it deterministically around any LLM client so
the service layer's retry/backoff path can be exercised end to end.
"""

from __future__ import annotations

import random
import re
import threading
from dataclasses import dataclass
from typing import Optional

from repro.cypher.ast_nodes import (
    BinaryOp,
    Literal,
    MatchClause,
    NodePattern,
    PropertyAccess,
    RelPattern,
    SingleQuery,
    Variable,
)
from repro.cypher.parser import parse
from repro.cypher.render import render_query
from repro.llm.profiles import ModelProfile

#: invented property names the models reach for (mirrors the paper's
#: ``score`` / ``penaltyScore`` / ``minutes`` example)
HALLUCINATED_PROPERTY_POOL = (
    "score", "penaltyScore", "minutes", "status", "level", "category",
    "rank", "weight",
)


@dataclass(frozen=True)
class InjectionResult:
    """The possibly-faulted query and what was done to it."""

    query: str
    #: 'direction' | 'syntax' | 'property' | 'unsat' | 'type'
    fault: Optional[str]


def flip_first_direction(query_text: str) -> Optional[str]:
    """Reverse the first directed relationship in the query, or None."""
    try:
        query = parse(query_text)
    except Exception:
        return None
    if not isinstance(query, SingleQuery):
        return None

    flipped = False
    new_clauses = []
    for clause in query.clauses:
        if isinstance(clause, MatchClause) and not flipped:
            new_patterns = []
            for pattern in clause.patterns:
                if flipped:
                    new_patterns.append(pattern)
                    continue
                new_elements = []
                for element in pattern.elements:
                    if (
                        isinstance(element, RelPattern)
                        and element.direction in ("out", "in")
                        and not flipped
                    ):
                        reverse = "in" if element.direction == "out" else "out"
                        element = RelPattern(
                            variable=element.variable, types=element.types,
                            direction=reverse, properties=element.properties,
                            min_hops=element.min_hops,
                            max_hops=element.max_hops,
                        )
                        flipped = True
                    new_elements.append(element)
                new_patterns.append(
                    type(pattern)(
                        variable=pattern.variable,
                        elements=tuple(new_elements),
                    )
                )
            clause = MatchClause(
                patterns=tuple(new_patterns), optional=clause.optional,
                where=clause.where,
            )
        new_clauses.append(clause)
    if not flipped:
        return None
    return render_query(SingleQuery(clauses=tuple(new_clauses)))


def inject_syntax_fault(query_text: str, rng: random.Random) -> Optional[str]:
    """Apply one of the paper's syntax-fault patterns, or None."""
    candidates: list[str] = []
    if " =~ " in query_text:
        # the '=' instead of '=~' error from the paper's third example
        candidates.append(query_text.replace(" =~ ", " = ", 1))
    quantifier = re.search(r"\{(\d+),(\d*)\}", query_text)
    if quantifier:
        # the '(2,)' instead of '{2,}' regex-quantifier mangling
        mangled = (
            query_text[:quantifier.start()]
            + f"({quantifier.group(1)},{quantifier.group(2)})"
            + query_text[quantifier.end():]
        )
        candidates.append(mangled)
    if " AS " in query_text:
        # dropping an AS keyword leaves an unparsable projection
        candidates.append(query_text.replace(" AS ", " ", 1))
    if query_text.rstrip().endswith(")"):
        candidates.append(query_text.rstrip()[:-1])
    if not candidates:
        return None
    return rng.choice(candidates)


def inject_property_fault(
    query_text: str, rng: random.Random
) -> Optional[str]:
    """Swap one property reference for an invented name, or None."""
    accesses = list(re.finditer(r"\.(\w+)", query_text))
    if not accesses:
        return None
    target = rng.choice(accesses)
    replacement = rng.choice(HALLUCINATED_PROPERTY_POOL)
    if target.group(1) == replacement:
        replacement = HALLUCINATED_PROPERTY_POOL[0]
    return (
        query_text[:target.start()]
        + "." + replacement
        + query_text[target.end():]
    )


def inject_unsat_fault(
    query_text: str, rng: random.Random
) -> Optional[str]:
    """Append a contradictory WHERE conjunct, or None.

    The result still parses and passes the linter, but the static
    analyzer proves it can never return a row — the "semantically
    broken but syntactically fine" failure class the refine loop's fix
    synthesis exists to repair.  Two flavours, both reversible by a
    single drop-conjunct rewrite:

    * ``v.key < NULL`` — comparisons against NULL are never true;
    * ``v.key > hi AND v.key < lo`` — an empty interval.
    """
    try:
        query = parse(query_text)
    except Exception:
        return None
    if not isinstance(query, SingleQuery):
        return None
    for index, clause in enumerate(query.clauses):
        if not isinstance(clause, MatchClause) or clause.optional:
            continue
        variables = [
            element.variable
            for pattern in clause.patterns
            for element in pattern.elements
            if isinstance(element, NodePattern) and element.variable
        ]
        if not variables:
            continue
        name = rng.choice(variables)
        keys = re.findall(rf"\b{re.escape(name)}\.(\w+)", query_text)
        subject = PropertyAccess(Variable(name), keys[0] if keys else "id")
        if rng.random() < 0.5:
            extra: BinaryOp = BinaryOp("<", subject, Literal(None))
        else:
            extra = BinaryOp(
                "AND",
                BinaryOp(">", subject, Literal(1000000)),
                BinaryOp("<", subject, Literal(0)),
            )
        where = (
            extra if clause.where is None
            else BinaryOp("AND", clause.where, extra)
        )
        clauses = list(query.clauses)
        clauses[index] = MatchClause(
            patterns=clause.patterns, optional=clause.optional, where=where,
        )
        return render_query(SingleQuery(clauses=tuple(clauses)))
    return None


#: a property compared (or IN-listed) against plain numeric literals
_NUMERIC_COMPARISON = re.compile(
    r"(\.\w+\s*(?:<=|>=|<>|[=<>])\s*)(\d+(?:\.\d+)?)(?![\w.])"
)
_NUMERIC_IN_LIST = re.compile(r"\bIN \[([^\]]*)\]")
_ALL_NUMERIC = re.compile(
    r"\s*\d+(?:\.\d+)?(?:\s*,\s*\d+(?:\.\d+)?)*\s*"
)


def inject_type_fault(
    query_text: str, rng: random.Random
) -> Optional[str]:
    """Re-type a numeric literal in a comparison as a string, or None.

    ``n.id > 3`` becomes ``n.id > '3'`` — parse-clean, linter-clean,
    but the type checker flags the disjoint classes and the comparison
    is null at runtime.  The literal stays *coercible* so the
    retype-comparison fix can mechanically restore it.
    """
    comparisons = list(_NUMERIC_COMPARISON.finditer(query_text))
    if comparisons:
        target = rng.choice(comparisons)
        return (
            query_text[:target.start(2)]
            + f"'{target.group(2)}'"
            + query_text[target.end(2):]
        )
    in_lists = [
        match for match in _NUMERIC_IN_LIST.finditer(query_text)
        if _ALL_NUMERIC.fullmatch(match.group(1))
    ]
    if in_lists:
        target = rng.choice(in_lists)
        quoted = ", ".join(
            f"'{item.strip()}'" for item in target.group(1).split(",")
        )
        return (
            query_text[:target.start(1)]
            + quoted
            + query_text[target.end(1):]
        )
    return None


# ----------------------------------------------------------------------
# transient call failures
# ----------------------------------------------------------------------
class TransientLLMError(RuntimeError):
    """A retriable LLM-call failure (timeout, 429, connection reset)."""


class TransientFaultInjector:
    """Fails the first ``failures`` completions it sees, then passes.

    Used as a pipeline ``llm_middleware``: calling the injector with an
    LLM client wraps it in a :class:`FlakyLLM` sharing this budget, so a
    bounded burst of transient failures spans retries (and replicas)
    regardless of which wrapped client receives the next call.
    """

    def __init__(
        self,
        failures: int = 1,
        message: str = "simulated transient LLM failure",
    ) -> None:
        self.remaining = failures
        self.injected = 0
        self.message = message
        self._lock = threading.Lock()

    def take(self) -> bool:
        """Consume one failure from the budget, if any remains."""
        with self._lock:
            if self.remaining <= 0:
                return False
            self.remaining -= 1
            self.injected += 1
            return True

    def __call__(self, llm) -> "FlakyLLM":
        return FlakyLLM(llm, self)


class FlakyLLM:
    """Wraps any LLM client; raises :class:`TransientLLMError` while the
    injector's failure budget lasts, then delegates transparently."""

    def __init__(self, inner, injector: TransientFaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def complete(self, prompt: str):
        if self._injector.take():
            raise TransientLLMError(self._injector.message)
        return self._inner.complete(prompt)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def maybe_inject(
    query_text: str, profile: ModelProfile, rng: random.Random
) -> InjectionResult:
    """Apply at most one fault according to the profile's rates."""
    roll = rng.random()
    if roll < profile.direction_flip_rate:
        flipped = flip_first_direction(query_text)
        if flipped is not None:
            return InjectionResult(query=flipped, fault="direction")
    elif roll < profile.direction_flip_rate + profile.syntax_fault_rate:
        broken = inject_syntax_fault(query_text, rng)
        if broken is not None:
            return InjectionResult(query=broken, fault="syntax")
    elif roll < (
        profile.direction_flip_rate + profile.syntax_fault_rate
        + profile.property_fault_rate
    ):
        mangled = inject_property_fault(query_text, rng)
        if mangled is not None:
            return InjectionResult(query=mangled, fault="property")
    elif roll < (
        profile.direction_flip_rate + profile.syntax_fault_rate
        + profile.property_fault_rate + profile.unsat_fault_rate
    ):
        contradicted = inject_unsat_fault(query_text, rng)
        if contradicted is not None:
            return InjectionResult(query=contradicted, fault="unsat")
    elif roll < (
        profile.direction_flip_rate + profile.syntax_fault_rate
        + profile.property_fault_rate + profile.unsat_fault_rate
        + profile.type_fault_rate
    ):
        retyped = inject_type_fault(query_text, rng)
        if retyped is not None:
            return InjectionResult(query=retyped, fault="type")
    return InjectionResult(query=query_text, fault=None)
