"""The simulated LLM: deterministic, prompt-bounded, behaviour-profiled.

``SimulatedLLM`` implements the :class:`~repro.llm.base.LLMClient`
protocol with two skills, dispatched on the prompt's section markers:

* **rule generation** — parse the encoded graph text out of the prompt,
  run :class:`~repro.llm.induction.InductionEngine` over *only what is
  visible*, score proposals with the model profile (and the few-shot
  example kinds when present), occasionally hallucinate a property name,
  and emit a numbered list of natural-language rules;
* **Cypher generation** — parse the rule sentence and the schema summary
  out of the prompt, translate with the ground-truth translator oriented
  by that (prompt-supplied) schema, then pass the query through the
  seeded fault injector.

Determinism: each completion seeds its RNG from (base seed, CRC32 of the
prompt), so the same prompt always gets the same answer but different
windows get different noise.
"""

from __future__ import annotations

import dataclasses
import random
import re
import zlib

from repro import obs
from repro.encoding.tokenizer import count_tokens
from repro.llm.base import CallLog, Completion, SimulatedClock
from repro.llm.faults import HALLUCINATED_PROPERTY_POOL, maybe_inject
from repro.llm.induction import InductionEngine, Proposal
from repro.llm.profiles import ModelProfile, get_profile
from repro.llm.prompt_io import (
    extract_section,
    parse_schema_summary,
    parse_visible_graph,
)
from repro.prompts.templates import (
    CORRECTION_TASK,
    EXAMPLES_SECTION,
    FEEDBACK_SECTION,
    GRAPH_SECTION,
    RULE_SECTION,
    SCHEMA_SECTION,
)
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.nl import from_natural_language, parse_rule_list, to_natural_language
from repro.rules.translator import RuleTranslator, UntranslatableRuleError

#: evidence-threshold bump applied under few-shot prompting: examples
#: make the model pickier (fewer rules, higher confidence — §4.3)
FEW_SHOT_THRESHOLD_BUMP = 0.07
#: score multiplier for kinds demonstrated in the few-shot examples
FEW_SHOT_KIND_BOOST = 1.3


class SimulatedLLM:
    """A deterministic stand-in for a locally-served LLaMA-3 / Mixtral."""

    def __init__(
        self,
        profile: ModelProfile | str,
        seed: int = 0,
        clock: SimulatedClock | None = None,
        log: CallLog | None = None,
    ) -> None:
        self.profile = (
            get_profile(profile) if isinstance(profile, str) else profile
        )
        self.seed = seed
        self.clock = clock or SimulatedClock()
        self.log = log

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------
    def complete(self, prompt: str) -> Completion:
        """Answer one prompt (rule generation or Cypher generation)."""
        with obs.span("llm.call", model=self.profile.name) as sp:
            rng = self._rng_for(prompt)
            if extract_section(prompt, RULE_SECTION) is not None:
                if (
                    extract_section(prompt, FEEDBACK_SECTION) is not None
                    and CORRECTION_TASK in prompt
                ):
                    skill = "correction"
                    text = self._complete_correction(prompt, rng)
                else:
                    skill = "cypher"
                    text = self._complete_cypher(prompt, rng)
            elif extract_section(prompt, GRAPH_SECTION) is not None:
                skill = "rules"
                text = self._complete_rules(prompt, rng)
            else:
                skill = "unknown"
                text = "I need a graph or a rule to work with."
            completion = self._package(prompt, text)
            self.clock.record(completion)
            if self.log is not None:
                self.log.record(completion)
            sp.set_attribute("skill", skill)
            sp.set_attribute("prompt_tokens", completion.prompt_tokens)
            sp.set_attribute("completion_tokens", completion.completion_tokens)
            sp.set_attribute("sim_latency_seconds", completion.latency_seconds)
            sp.add_sim_time(completion.latency_seconds)
            obs.inc("llm.calls", 1, model=self.profile.name, skill=skill)
            obs.inc(
                "llm.prompt_tokens", completion.prompt_tokens,
                model=self.profile.name,
            )
            obs.inc(
                "llm.completion_tokens", completion.completion_tokens,
                model=self.profile.name,
            )
            obs.observe(
                "llm.sim_latency_seconds", completion.latency_seconds,
                model=self.profile.name,
            )
        return completion

    def _rng_for(self, prompt: str) -> random.Random:
        digest = zlib.crc32(prompt.encode("utf-8"))
        return random.Random((self.seed << 32) ^ digest)

    def _package(self, prompt: str, text: str) -> Completion:
        prompt_tokens = count_tokens(prompt)
        completion_tokens = max(1, count_tokens(text))
        latency = self.profile.latency.latency(
            prompt_tokens, completion_tokens
        )
        return Completion(
            text=text,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            latency_seconds=latency,
            model=self.profile.name,
        )

    # ------------------------------------------------------------------
    # rule generation
    # ------------------------------------------------------------------
    def _complete_rules(self, prompt: str, rng: random.Random) -> str:
        graph_text = extract_section(prompt, GRAPH_SECTION) or ""
        view = parse_visible_graph(graph_text)
        proposals = InductionEngine(view).propose()

        examples_text = extract_section(prompt, EXAMPLES_SECTION)
        example_kinds: set[RuleKind] = set()
        threshold = self.profile.evidence_threshold
        if examples_text:
            example_rules, _unparsed = parse_rule_list(examples_text)
            example_kinds = {rule.kind for rule in example_rules}
            threshold += FEW_SHOT_THRESHOLD_BUMP

        scored: list[tuple[float, int, Proposal]] = []
        for index, proposal in enumerate(proposals):
            weight = self.profile.kind_weight(proposal.rule.kind)
            if weight <= 0:
                continue
            score = proposal.evidence * weight
            if proposal.rule.kind in example_kinds:
                score *= FEW_SHOT_KIND_BOOST
            score += rng.uniform(-0.04, 0.04)
            if proposal.evidence < threshold:
                continue
            scored.append((score, index, proposal))

        per_call_cap = self.profile.max_rules_per_call
        if example_kinds:
            # few-shot makes the model terser: it imitates the short
            # example list instead of enumerating everything it sees
            per_call_cap = max(3, per_call_cap - 2)

        # greedy pick with a mild diminishing-returns penalty per
        # (kind, label) so one label's properties don't fill every slot
        pool = list(scored)
        kept: list[Proposal] = []
        group_counts: dict[tuple, int] = {}
        while pool and len(kept) < per_call_cap:
            best_at = 0
            best_value = float("-inf")
            for at, (score, _index, proposal) in enumerate(pool):
                group = (
                    proposal.rule.kind,
                    proposal.rule.label or proposal.rule.edge_label,
                )
                value = score * (0.7 ** group_counts.get(group, 0))
                if value > best_value:
                    best_value = value
                    best_at = at
            _score, _index, chosen = pool.pop(best_at)
            group = (
                chosen.rule.kind,
                chosen.rule.label or chosen.rule.edge_label,
            )
            group_counts[group] = group_counts.get(group, 0) + 1
            kept.append(chosen)

        sentences: list[str] = []
        for position, proposal in enumerate(kept, start=1):
            rule = self._maybe_hallucinate(proposal.rule, view, rng)
            sentences.append(f"{position}. {to_natural_language(rule)}")
        if not sentences:
            return "No consistency rules could be inferred from this data."
        return "\n".join(sentences)

    def _maybe_hallucinate(
        self,
        rule: ConsistencyRule,
        view,
        rng: random.Random,
    ) -> ConsistencyRule:
        """Sometimes swap a property for an invented one (§4.4, cat. 2)."""
        if not rule.properties:
            return rule
        if rng.random() >= self.profile.hallucination_rate:
            return rule
        invented = rng.choice(HALLUCINATED_PROPERTY_POOL)
        properties = tuple(
            invented if index == len(rule.properties) - 1 else key
            for index, key in enumerate(rule.properties)
        )
        mutated = ConsistencyRule(
            kind=rule.kind, text="", label=rule.label,
            properties=properties, edge_label=rule.edge_label,
            src_label=rule.src_label, dst_label=rule.dst_label,
            allowed_values=rule.allowed_values,
            pattern_regex=rule.pattern_regex,
            scope_edge_label=rule.scope_edge_label,
            scope_label=rule.scope_label,
            time_property=rule.time_property,
        )
        return mutated

    # ------------------------------------------------------------------
    # Cypher generation
    # ------------------------------------------------------------------
    def _complete_cypher(self, prompt: str, rng: random.Random) -> str:
        rule_text = extract_section(prompt, RULE_SECTION) or ""
        schema_text = extract_section(prompt, SCHEMA_SECTION) or ""
        rule = from_natural_language(rule_text.strip())
        if rule is None:
            return "MATCH (n) RETURN count(*) AS support"
        schema = parse_schema_summary(schema_text)
        translator = RuleTranslator(schema)  # duck-typed: edge_connects
        try:
            queries = translator.translate(rule)
        except UntranslatableRuleError:
            return "MATCH (n) RETURN count(*) AS support"
        if extract_section(prompt, FEEDBACK_SECTION) is not None:
            # regeneration with analyzer feedback: a compliant model
            # fixes the query it was told is broken; otherwise it still
            # rerolls the fault dice on a fresh RNG stream
            if rng.random() < self.profile.correction_compliance:
                return queries.check
        injected = maybe_inject(queries.check, self.profile, rng)
        return injected.query

    # ------------------------------------------------------------------
    # rule revision (the refine loop's correction protocol)
    # ------------------------------------------------------------------
    _BAD_PROPERTY_RE = re.compile(r"property '([A-Za-z_]\w*)' does not exist")
    #: value-constrained kinds that relax to a bare existence rule when
    #: the feedback proves the constraint itself is the problem
    _RELAXABLE = frozenset({RuleKind.VALUE_DOMAIN, RuleKind.VALUE_FORMAT})

    def _complete_correction(self, prompt: str, rng: random.Random) -> str:
        rule_text = extract_section(prompt, RULE_SECTION) or ""
        schema_text = extract_section(prompt, SCHEMA_SECTION) or ""
        feedback = extract_section(prompt, FEEDBACK_SECTION) or ""
        rule = from_natural_language(rule_text.strip())
        if rule is None:
            return "I cannot parse the rule to revise."
        if rng.random() >= self.profile.correction_compliance:
            # non-compliant: restates the rule unchanged
            return f"1. {to_natural_language(rule)}"
        schema = parse_schema_summary(schema_text)
        revised = self._revise_rule(rule, feedback, schema, rng)
        return f"1. {to_natural_language(revised)}"

    def _revise_rule(
        self, rule: ConsistencyRule, feedback: str, schema, rng: random.Random
    ) -> ConsistencyRule:
        bad_properties = set(self._BAD_PROPERTY_RE.findall(feedback))
        revised = rule
        if bad_properties & set(rule.properties):
            kept = tuple(
                key for key in rule.properties if key not in bad_properties
            )
            if kept:
                revised = dataclasses.replace(rule, text="", properties=kept)
            else:
                # every property was invented: swap in a real one from
                # the prompt's schema summary, dropping any value
                # constraint that was about the invented property
                known = schema.node_properties.get(rule.label or "", [])
                candidates = [k for k in known if k not in bad_properties]
                if not candidates:
                    return rule
                revised = dataclasses.replace(
                    rule, text="",
                    properties=(rng.choice(candidates),),
                    kind=(
                        RuleKind.PROPERTY_EXISTS
                        if rule.kind in self._RELAXABLE else rule.kind
                    ),
                    allowed_values=(),
                    pattern_regex=None,
                )
        lowered = feedback.lower()
        if (
            "unsatisfiable" in lowered
            or "type-confused" in lowered
            or "comparison-with-null" in lowered
        ) and revised.kind in self._RELAXABLE:
            # the value constraint is what the analyzer disproved:
            # relax to the existence rule it strictly implies
            revised = dataclasses.replace(
                revised, text="", kind=RuleKind.PROPERTY_EXISTS,
                allowed_values=(), pattern_regex=None,
            )
        return revised
