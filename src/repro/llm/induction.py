"""Rule induction over the *visible* prompt contents.

This is the cognitive core of the simulated LLM: given only the
:class:`~repro.llm.prompt_io.VisibleGraphView` parsed from one prompt
(one sliding window, or one RAG context), propose consistency rules with
an evidence score.  Because proposals are grounded in what the window
happens to contain, the paper's observed mechanics come out naturally:

* windows see the whole graph ⇒ union of proposals is broad (SWA wins);
* RAG sees a few retrieved chunks ⇒ fewer, narrower proposals;
* temporal rules require *both* endpoints of an edge to be visible in
  the same context ⇒ they appear only "occasionally";
* categorical-domain proposals list only the values the window saw ⇒
  globally incomplete domains ⇒ confidence below 100%.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.llm.prompt_io import EdgeObservation, VisibleGraphView
from repro.rules.model import ConsistencyRule, RuleKind

#: property names treated as timestamps for temporal-rule induction
TIME_PROPERTY_NAMES = frozenset({
    "created_at", "date", "timestamp", "time", "since", "dob",
    "pwdlastset", "lastlogon", "published", "discovered", "minute",
})

#: property names treated as identifiers for key-rule induction
ID_PROPERTY_HINTS = ("id", "objectid", "uuid", "key")

#: named format detectors: (format name, regex); values must fullmatch
FORMAT_DETECTORS: tuple[tuple[str, str], ...] = (
    ("url", r"https?://[a-z0-9./-]+"),
    ("cve", r"CVE-\d{4}-\d{4,5}"),
    ("domain", r"([a-z0-9-]+\.)+[a-z]{2,}"),
    ("iso_datetime", r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}"),
    ("iso_date", r"\d{4}-\d{2}-\d{2}"),
)

_MIN_LABEL_SAMPLE = 2       # need at least this many nodes of a label
_MIN_EDGE_SAMPLE = 3
_MAX_DOMAIN_SIZE = 6        # categorical domains larger than this: no rule
#: an LLM freely overgeneralises "should have" rules from a mostly-
#: complete property — the mechanism behind sub-100% confidence scores
_COMPLETENESS_THRESHOLD = 0.75


@dataclass(frozen=True)
class Proposal:
    """One candidate rule with the evidence that produced it."""

    rule: ConsistencyRule
    evidence: float

    def with_evidence(self, evidence: float) -> "Proposal":
        return Proposal(rule=self.rule, evidence=evidence)


def _is_id_property(key: str) -> bool:
    lowered = key.lower()
    return any(
        lowered == hint or lowered.endswith(hint)
        for hint in ID_PROPERTY_HINTS
    )


def _is_time_property(key: str) -> bool:
    return key.lower() in TIME_PROPERTY_NAMES


def _detect_format(values: list[object]) -> tuple[str, str] | None:
    strings = [value for value in values if isinstance(value, str)]
    if len(strings) < 3 or len(strings) != len(values):
        return None
    for name, regex in FORMAT_DETECTORS:
        compiled = re.compile(regex)
        if all(compiled.fullmatch(value) for value in strings):
            return name, regex
    return None


class InductionEngine:
    """Derives rule proposals from one visible graph view."""

    def __init__(self, view: VisibleGraphView) -> None:
        self.view = view

    # ------------------------------------------------------------------
    def propose(self) -> list[Proposal]:
        """All proposals derivable from the view, unfiltered."""
        proposals: list[Proposal] = []
        proposals.extend(self._node_property_rules())
        proposals.extend(self._edge_rules())
        proposals.extend(self._mandatory_edge_rules())
        proposals.extend(self._temporal_order_rules())
        proposals.extend(self._primary_key_rules())
        proposals.extend(self._pattern_rules())
        return proposals

    # ------------------------------------------------------------------
    # node-level rules
    # ------------------------------------------------------------------
    def _node_property_rules(self) -> Iterable[Proposal]:
        for label in self.view.labels():
            nodes = self.view.nodes_with_label(label)
            total = len(nodes)
            if total < _MIN_LABEL_SAMPLE:
                continue
            keys: dict[str, list[object]] = {}
            for node in nodes:
                for key, value in node.properties.items():
                    keys.setdefault(key, []).append(value)
            for key, values in sorted(keys.items()):
                completeness = len(values) / total
                if completeness >= _COMPLETENESS_THRESHOLD:
                    yield Proposal(
                        rule=ConsistencyRule(
                            kind=RuleKind.PROPERTY_EXISTS, text="",
                            label=label, properties=(key,),
                        ),
                        evidence=min(0.98, completeness),
                    )
                if (
                    _is_id_property(key)
                    and completeness >= _COMPLETENESS_THRESHOLD
                    and self._all_distinct(values)
                ):
                    yield Proposal(
                        rule=ConsistencyRule(
                            kind=RuleKind.UNIQUENESS, text="",
                            label=label, properties=(key,),
                        ),
                        evidence=min(0.95, 0.6 + total / 50),
                    )
                yield from self._domain_rules(label, key, values)

    @staticmethod
    def _all_distinct(values: list[object]) -> bool:
        try:
            return len(set(values)) == len(values)
        except TypeError:
            return False

    def _domain_rules(
        self, label: str, key: str, values: list[object]
    ) -> Iterable[Proposal]:
        if len(values) < _MIN_EDGE_SAMPLE:
            return
        try:
            distinct = set(values)
        except TypeError:
            return
        if distinct <= {True, False} and len(distinct) >= 1:
            yield Proposal(
                rule=ConsistencyRule(
                    kind=RuleKind.VALUE_DOMAIN, text="", label=label,
                    properties=(key,), allowed_values=(True, False),
                ),
                evidence=0.85,
            )
            return
        detected = _detect_format(values)
        if detected is not None and not _is_id_property(key):
            _name, regex = detected
            yield Proposal(
                rule=ConsistencyRule(
                    kind=RuleKind.VALUE_FORMAT, text="", label=label,
                    properties=(key,), pattern_regex=regex,
                ),
                evidence=0.72,
            )
            return
        if (
            all(isinstance(value, str) for value in distinct)
            and len(distinct) <= _MAX_DOMAIN_SIZE
            and len(values) >= 8
            and all(len(value) <= 30 for value in distinct)
        ):
            yield Proposal(
                rule=ConsistencyRule(
                    kind=RuleKind.VALUE_DOMAIN, text="", label=label,
                    properties=(key,),
                    allowed_values=tuple(sorted(distinct)),
                ),
                evidence=0.62,
            )

    # ------------------------------------------------------------------
    # edge-level rules
    # ------------------------------------------------------------------
    def _edge_rules(self) -> Iterable[Proposal]:
        for edge_label in self.view.edge_labels():
            edges = self.view.edges_with_label(edge_label)
            if len(edges) < _MIN_EDGE_SAMPLE:
                continue
            yield from self._endpoint_rule(edge_label, edges)
            yield from self._edge_property_rules(edge_label, edges)
            yield from self._self_loop_rule(edge_label, edges)
            yield from self._temporal_unique_rule(edge_label, edges)

    def _endpoint_labels(
        self, edge: EdgeObservation
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        src_labels = edge.src_labels or self.view.resolve_labels(edge.src)
        dst_labels = edge.dst_labels or self.view.resolve_labels(edge.dst)
        return src_labels, dst_labels

    def _endpoint_rule(
        self, edge_label: str, edges: list[EdgeObservation]
    ) -> Iterable[Proposal]:
        pairs = set()
        known = 0
        for edge in edges:
            src_labels, dst_labels = self._endpoint_labels(edge)
            if not src_labels or not dst_labels:
                continue
            known += 1
            pairs.add((src_labels[0], dst_labels[0]))
        if known >= _MIN_EDGE_SAMPLE and len(pairs) == 1:
            src_label, dst_label = next(iter(pairs))
            yield Proposal(
                rule=ConsistencyRule(
                    kind=RuleKind.ENDPOINT, text="",
                    edge_label=edge_label,
                    src_label=src_label, dst_label=dst_label,
                ),
                evidence=min(0.95, 0.5 + known / 20),
            )

    def _edge_property_rules(
        self, edge_label: str, edges: list[EdgeObservation]
    ) -> Iterable[Proposal]:
        total = len(edges)
        keys: dict[str, int] = {}
        for edge in edges:
            for key in edge.properties:
                keys[key] = keys.get(key, 0) + 1
        for key, present in sorted(keys.items()):
            completeness = present / total
            if completeness >= _COMPLETENESS_THRESHOLD:
                yield Proposal(
                    rule=ConsistencyRule(
                        kind=RuleKind.EDGE_PROP_EXISTS, text="",
                        edge_label=edge_label, properties=(key,),
                    ),
                    evidence=min(0.9, completeness * 0.92),
                )

    def _self_loop_rule(
        self, edge_label: str, edges: list[EdgeObservation]
    ) -> Iterable[Proposal]:
        same_label = 0
        label: str | None = None
        for edge in edges:
            src_labels, dst_labels = self._endpoint_labels(edge)
            if src_labels and src_labels == dst_labels:
                same_label += 1
                label = src_labels[0]
            if edge.src == edge.dst:
                return  # a self-loop was observed; no rule
        if same_label >= 5 and label is not None:
            yield Proposal(
                rule=ConsistencyRule(
                    kind=RuleKind.NO_SELF_LOOP, text="",
                    label=label, edge_label=edge_label,
                ),
                evidence=min(0.8, 0.5 + same_label / 40),
            )

    def _temporal_unique_rule(
        self, edge_label: str, edges: list[EdgeObservation]
    ) -> Iterable[Proposal]:
        for key in sorted({k for e in edges for k in e.properties}):
            if not _is_time_property(key):
                continue
            triples = []
            for edge in edges:
                if key in edge.properties:
                    triples.append((edge.src, edge.dst, edge.properties[key]))
            if len(triples) < _MIN_EDGE_SAMPLE:
                continue
            if len(set(triples)) != len(triples):
                continue  # duplicate observed: rule does not hold
            src_labels, dst_labels = self._endpoint_labels(edges[0])
            yield Proposal(
                rule=ConsistencyRule(
                    kind=RuleKind.TEMPORAL_UNIQUE, text="",
                    edge_label=edge_label,
                    src_label=src_labels[0] if src_labels else None,
                    dst_label=dst_labels[0] if dst_labels else None,
                    time_property=key,
                ),
                evidence=min(0.75, 0.45 + len(triples) / 30),
            )

    # ------------------------------------------------------------------
    # rules requiring node/edge joins inside the visible context
    # ------------------------------------------------------------------
    def _mandatory_edge_rules(self) -> Iterable[Proposal]:
        incoming: dict[tuple[str, str], set[str]] = {}
        outgoing: dict[tuple[str, str], set[str]] = {}
        other_side: dict[tuple[str, str, str], str] = {}
        for edge in self.view.edges:
            src_labels, dst_labels = self._endpoint_labels(edge)
            for label in dst_labels[:1]:
                incoming.setdefault((label, edge.label), set()).add(edge.dst)
                if src_labels:
                    other_side[(label, edge.label, "in")] = src_labels[0]
            for label in src_labels[:1]:
                outgoing.setdefault((label, edge.label), set()).add(edge.src)
                if dst_labels:
                    other_side[(label, edge.label, "out")] = dst_labels[0]

        for (label, edge_label), covered in sorted(incoming.items()):
            nodes = {
                n.node_id for n in self.view.nodes_with_label(label)
            }
            if len(nodes) < 5:
                continue
            fraction = len(covered & nodes) / len(nodes)
            partner = other_side.get((label, edge_label, "in"))
            if fraction >= 0.95 and partner:
                yield Proposal(
                    rule=ConsistencyRule(
                        kind=RuleKind.MANDATORY_EDGE, text="",
                        label=label, edge_label=edge_label,
                        src_label=partner, dst_label=label,
                    ),
                    evidence=min(0.85, fraction * 0.85),
                )
        for (label, edge_label), covered in sorted(outgoing.items()):
            nodes = {
                n.node_id for n in self.view.nodes_with_label(label)
            }
            if len(nodes) < 5:
                continue
            fraction = len(covered & nodes) / len(nodes)
            partner = other_side.get((label, edge_label, "out"))
            if fraction >= 0.95 and partner:
                yield Proposal(
                    rule=ConsistencyRule(
                        kind=RuleKind.MANDATORY_EDGE, text="",
                        label=label, edge_label=edge_label,
                        src_label=label, dst_label=partner,
                    ),
                    evidence=min(0.85, fraction * 0.82),
                )

    def _temporal_order_rules(self) -> Iterable[Proposal]:
        for edge_label in self.view.edge_labels():
            edges = self.view.edges_with_label(edge_label)
            candidates: dict[str, list[tuple[object, object]]] = {}
            for edge in edges:
                src = self.view.nodes.get(edge.src)
                dst = self.view.nodes.get(edge.dst)
                if src is None or dst is None:
                    continue
                for key in src.properties:
                    if not _is_time_property(key):
                        continue
                    if key not in dst.properties:
                        continue
                    candidates.setdefault(key, []).append(
                        (src.properties[key], dst.properties[key])
                    )
            for key, pairs in sorted(candidates.items()):
                if len(pairs) < 2:
                    continue
                try:
                    ordered = all(a >= b for a, b in pairs)
                except TypeError:
                    continue
                if not ordered:
                    continue
                edge = next(
                    e for e in edges
                    if e.src in self.view.nodes and e.dst in self.view.nodes
                )
                src_labels, dst_labels = self._endpoint_labels(edge)
                if not src_labels or not dst_labels:
                    continue
                yield Proposal(
                    rule=ConsistencyRule(
                        kind=RuleKind.TEMPORAL_ORDER, text="",
                        edge_label=edge_label,
                        src_label=src_labels[0], dst_label=dst_labels[0],
                        time_property=key,
                    ),
                    evidence=min(0.8, 0.45 + len(pairs) / 12),
                )

    def _primary_key_rules(self) -> Iterable[Proposal]:
        # scoped uniqueness: id of L unique within the S it links to
        groups: dict[tuple[str, str, str], list[tuple[str, object]]] = {}
        for edge in self.view.edges:
            src = self.view.nodes.get(edge.src)
            dst = self.view.nodes.get(edge.dst)
            if src is None or dst is None:
                continue
            if not src.labels or not dst.labels:
                continue
            for key, value in src.properties.items():
                if not _is_id_property(key):
                    continue
                groups.setdefault(
                    (src.labels[0], edge.label, dst.labels[0]), []
                ).append((edge.dst + "/" + key, value))
        for (label, edge_label, scope_label), pairs in sorted(groups.items()):
            if len(pairs) < 4:
                continue
            key = pairs[0][0].rsplit("/", 1)[1]
            scoped = [(scope, value) for scope, value in pairs
                      if scope.endswith("/" + key)]
            try:
                if len(set(scoped)) != len(scoped):
                    continue
            except TypeError:
                continue
            yield Proposal(
                rule=ConsistencyRule(
                    kind=RuleKind.PRIMARY_KEY, text="", label=label,
                    properties=(key,), scope_label=scope_label,
                    scope_edge_label=edge_label,
                ),
                evidence=min(0.7, 0.4 + len(scoped) / 30),
            )

    def _pattern_rules(self) -> Iterable[Proposal]:
        # two-hop closure: (n:L)-[:E1]->(m:M) implies (m)-[:E2]->(k:K).
        # dicts double as insertion-ordered sets: iteration must not
        # depend on hash randomisation or runs stop being reproducible
        first_hop: dict[tuple[str, str, str], dict[str, None]] = {}
        second_hop: dict[tuple[str, str], dict[str, str]] = {}
        for edge in self.view.edges:
            src_labels, dst_labels = self._endpoint_labels(edge)
            if not src_labels or not dst_labels:
                continue
            first_hop.setdefault(
                (src_labels[0], edge.label, dst_labels[0]), {}
            )[edge.dst] = None
            second_hop.setdefault(
                (dst_labels[0], edge.label), {}
            )
            second_hop.setdefault((src_labels[0], edge.label), {})[
                edge.src
            ] = dst_labels[0]
        for (label, edge1, mid_label), mids in sorted(first_hop.items()):
            if len(mids) < 3:
                continue
            for (mid2, edge2), sources in sorted(second_hop.items()):
                if mid2 != mid_label or edge2 == edge1:
                    continue
                covered = [m for m in mids if m in sources]
                if not covered or len(covered) / len(mids) < 0.9:
                    continue
                scope_label = sources[covered[0]]
                yield Proposal(
                    rule=ConsistencyRule(
                        kind=RuleKind.PATTERN, text="", label=label,
                        edge_label=edge1, dst_label=mid_label,
                        scope_label=scope_label, scope_edge_label=edge2,
                    ),
                    evidence=min(
                        0.7, 0.4 + len(covered) / (len(mids) * 4)
                    ),
                )
