"""Behaviour profiles for the simulated LLaMA-3 and Mixtral.

The study's qualitative contrast (§4.5):

* **LLaMA-3** generates more rules with higher support/coverage/
  confidence, mostly *simple* schema constraints (uniqueness, required
  properties, labels);
* **Mixtral** generates fewer rules but more *complex* ones (multi-hop
  patterns, temporal constraints, scoped keys), hallucinates properties
  more often (its ``score``/``penaltyScore``/``minutes`` example in
  §4.4), and makes more Cypher translation mistakes.

A profile parameterises the induction engine (which proposals to keep)
and the fault model (how Cypher generation goes wrong).  Rates are per
rule; the direction-flip rate is calibrated so roughly five flips appear
across the whole study, as the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.timing import LLAMA3_LATENCY, MIXTRAL_LATENCY, LatencyModel
from repro.rules.model import COMPLEX_KINDS, RuleKind, SIMPLE_KINDS


@dataclass(frozen=True)
class ModelProfile:
    """Everything that distinguishes one simulated model from another."""

    name: str
    latency: LatencyModel
    #: relative preference per rule kind (unlisted kinds get 0 weight)
    kind_weights: dict[RuleKind, float] = field(default_factory=dict)
    #: max rules emitted per completion (per window / per RAG call)
    max_rules_per_call: int = 5
    #: minimum induction evidence score for a proposal to be emitted
    evidence_threshold: float = 0.6
    #: cap on the combined rule set after cross-window dedup (§3.1.1)
    swa_rule_cap: int = 12
    #: how much pickier few-shot prompting makes the combination step
    few_shot_reduction: int = 3
    #: chance a kept rule gets a hallucinated property swapped in
    hallucination_rate: float = 0.1
    #: Cypher-generation fault rates (paper's three error categories)
    direction_flip_rate: float = 0.05
    syntax_fault_rate: float = 0.08
    property_fault_rate: float = 0.02
    #: semantic fault rates: parse-clean queries that are provably empty
    #: (contradictory WHERE) or compare properties against wrongly-typed
    #: literals.  Zero by default so the paper-grid runs are untouched;
    #: stress profiles turn them up to exercise the refine loop.
    unsat_fault_rate: float = 0.0
    type_fault_rate: float = 0.0
    #: chance the model actually applies analyzer feedback when a prompt
    #: carries a "Feedback" section (the refine loop's correction skill)
    correction_compliance: float = 0.85

    def kind_weight(self, kind: RuleKind) -> float:
        return self.kind_weights.get(kind, 0.0)


def _weights(simple: float, complex_: float,
             overrides: dict[RuleKind, float] | None = None
             ) -> dict[RuleKind, float]:
    weights = {kind: simple for kind in SIMPLE_KINDS}
    weights.update({kind: complex_ for kind in COMPLEX_KINDS})
    if overrides:
        weights.update(overrides)
    return weights


LLAMA3_PROFILE = ModelProfile(
    name="llama3",
    latency=LLAMA3_LATENCY,
    kind_weights=_weights(
        simple=1.0,
        complex_=0.25,
        overrides={
            # LLaMA-3 loves uniqueness/key rules ("Each tweet node should
            # have a unique id property") and required properties
            RuleKind.UNIQUENESS: 1.4,
            RuleKind.PROPERTY_EXISTS: 1.3,
            RuleKind.NO_SELF_LOOP: 0.5,
        },
    ),
    max_rules_per_call=8,
    evidence_threshold=0.55,
    swa_rule_cap=12,
    few_shot_reduction=4,
    hallucination_rate=0.03,
    direction_flip_rate=0.04,
    syntax_fault_rate=0.07,
    property_fault_rate=0.02,
)

MIXTRAL_PROFILE = ModelProfile(
    name="mixtral",
    latency=MIXTRAL_LATENCY,
    kind_weights=_weights(
        simple=0.7,
        complex_=1.1,
        overrides={
            # Mixtral's reported strengths: multi-hop patterns, scoped
            # keys and temporal constraints
            RuleKind.PATTERN: 1.5,
            RuleKind.PRIMARY_KEY: 1.3,
            RuleKind.TEMPORAL_UNIQUE: 1.3,
            RuleKind.TEMPORAL_ORDER: 1.2,
        },
    ),
    max_rules_per_call=7,
    evidence_threshold=0.6,
    swa_rule_cap=10,
    few_shot_reduction=3,
    hallucination_rate=0.09,
    direction_flip_rate=0.07,
    syntax_fault_rate=0.12,
    property_fault_rate=0.05,
)

PROFILES = {
    LLAMA3_PROFILE.name: LLAMA3_PROFILE,
    MIXTRAL_PROFILE.name: MIXTRAL_PROFILE,
}

MODEL_NAMES = ("llama3", "mixtral")

#: Display names used in the paper's tables.
DISPLAY_NAMES = {"llama3": "Llama-3", "mixtral": "Mixtral"}


def get_profile(name: str) -> ModelProfile:
    """Look up a model profile by name."""
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(PROFILES)}"
        ) from None
