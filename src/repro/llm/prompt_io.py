"""Reading prompts from the inside — the simulated LLM's only input.

The honesty contract of this reproduction: the simulated LLM sees
*nothing but the prompt string*.  This module recovers, from that string:

* which task is being asked (rule generation vs. Cypher generation) and
  whether few-shot examples are present;
* the encoded graph text (possibly a window fragment or a RAG context);
* a :class:`VisibleGraphView` parsed from that text — statements clipped
  at window boundaries fail to parse and are counted as lost, which is
  precisely the fragmentation effect §3.1.1 worries about;
* for Cypher prompts, the rule sentence and a :class:`MiniSchema` parsed
  from the schema summary.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.prompts.templates import (
    EXAMPLES_SECTION,
    FEEDBACK_SECTION,
    GRAPH_SECTION,
    RULE_SECTION,
    SCHEMA_SECTION,
    TASK_SECTION,
)

_SECTIONS = (GRAPH_SECTION, EXAMPLES_SECTION, TASK_SECTION,
             RULE_SECTION, SCHEMA_SECTION, FEEDBACK_SECTION)


def extract_section(prompt: str, header: str) -> str | None:
    """Text between ``header`` and the next section header (or the end)."""
    start = prompt.find(header)
    if start == -1:
        return None
    start += len(header)
    end = len(prompt)
    for other in _SECTIONS:
        position = prompt.find(other, start)
        if position != -1:
            end = min(end, position)
    return prompt[start:end].strip()


# ----------------------------------------------------------------------
# encoded-statement parsing
# ----------------------------------------------------------------------
_NODE_RE = re.compile(
    r"^Node (\S+) with label (\S+) has properties \((.*)\)\.$"
)
_EDGE_INCIDENT_RE = re.compile(
    r"^Node (\S+) \((\S+)\) connects to node (\S+) \((\S+)\) via edge "
    r"(\S+) with label (\S+) and properties \((.*)\)\.$"
)
_EDGE_ADJACENCY_RE = re.compile(
    r"^Edge (\S+): (\S+) -(\S+)-> (\S+) with properties \((.*)\)\.$"
)


def parse_property_block(block: str) -> dict[str, object]:
    """Parse ``key: value, key: value`` with quote/bracket awareness."""
    properties: dict[str, object] = {}
    if not block.strip():
        return properties
    entries: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for char in block:
        if char == "'" :
            in_string = not in_string
            current.append(char)
        elif char in "[(" and not in_string:
            depth += 1
            current.append(char)
        elif char in "])" and not in_string:
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0 and not in_string:
            entries.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        entries.append("".join(current))
    for entry in entries:
        if ":" not in entry:
            continue
        key, _colon, raw = entry.partition(":")
        properties[key.strip()] = _parse_value(raw.strip())
    return properties


def _parse_value(raw: str) -> object:
    if raw == "True":
        return True
    if raw == "False":
        return False
    if raw.startswith("'") and raw.endswith("'") and len(raw) >= 2:
        return raw[1:-1]
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [_parse_value(part.strip()) for part in inner.split(",")]
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


@dataclass(frozen=True)
class NodeObservation:
    node_id: str
    labels: tuple[str, ...]
    properties: dict[str, object]


@dataclass(frozen=True)
class EdgeObservation:
    edge_id: str
    label: str
    src: str
    dst: str
    src_labels: tuple[str, ...]     # empty for adjacency-encoded edges
    dst_labels: tuple[str, ...]
    properties: dict[str, object]


@dataclass
class VisibleGraphView:
    """Everything the LLM can know about the graph from one prompt."""

    nodes: dict[str, NodeObservation] = field(default_factory=dict)
    edges: list[EdgeObservation] = field(default_factory=list)
    unparsed_lines: int = 0          # boundary fragments, lost context

    # ------------------------------------------------------------------
    def node_count(self, label: str) -> int:
        return sum(1 for node in self.nodes.values() if label in node.labels)

    def labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for node in self.nodes.values():
            for label in node.labels:
                seen.setdefault(label, None)
        return list(seen)

    def nodes_with_label(self, label: str) -> list[NodeObservation]:
        return [n for n in self.nodes.values() if label in n.labels]

    def edge_labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for edge in self.edges:
            seen.setdefault(edge.label, None)
        return list(seen)

    def edges_with_label(self, label: str) -> list[EdgeObservation]:
        return [e for e in self.edges if e.label == label]

    def resolve_labels(self, node_id: str) -> tuple[str, ...]:
        observation = self.nodes.get(node_id)
        return observation.labels if observation else ()


def parse_visible_graph(text: str) -> VisibleGraphView:
    """Parse encoded-graph text into a view, dropping clipped lines."""
    view = VisibleGraphView()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        match = _NODE_RE.match(line)
        if match:
            node_id, label_text, props = match.groups()
            labels = tuple(label_text.split(":")) if label_text != "None" else ()
            view.nodes[node_id] = NodeObservation(
                node_id=node_id, labels=labels,
                properties=parse_property_block(props),
            )
            continue
        match = _EDGE_INCIDENT_RE.match(line)
        if match:
            src, src_labels, dst, dst_labels, edge_id, label, props = (
                match.groups()
            )
            view.edges.append(EdgeObservation(
                edge_id=edge_id, label=label, src=src, dst=dst,
                src_labels=tuple(src_labels.split(":"))
                if src_labels != "None" else (),
                dst_labels=tuple(dst_labels.split(":"))
                if dst_labels != "None" else (),
                properties=parse_property_block(props),
            ))
            continue
        match = _EDGE_ADJACENCY_RE.match(line)
        if match:
            edge_id, src, label, dst, props = match.groups()
            view.edges.append(EdgeObservation(
                edge_id=edge_id, label=label, src=src, dst=dst,
                src_labels=(), dst_labels=(),
                properties=parse_property_block(props),
            ))
            continue
        view.unparsed_lines += 1
    return view


# ----------------------------------------------------------------------
# schema summaries in Cypher prompts
# ----------------------------------------------------------------------
@dataclass
class MiniSchema:
    """Schema knowledge parsed back out of a Cypher prompt.

    Offers the same ``edge_connects`` surface the
    :class:`~repro.rules.translator.RuleTranslator` needs for direction
    decisions, so the simulated LLM orients patterns using only what the
    prompt told it.
    """

    node_properties: dict[str, list[str]] = field(default_factory=dict)
    edge_properties: dict[str, list[str]] = field(default_factory=dict)
    connections: list[tuple[str, str, str]] = field(default_factory=list)

    def edge_connects(
        self, src_label: str, edge_label: str, dst_label: str
    ) -> bool:
        return (src_label, edge_label, dst_label) in self.connections


_SUMMARY_NODE_RE = re.compile(r"^  (\S+): (.*)$")
_SUMMARY_CONN_RE = re.compile(r"^  \((\S+)\)-\[:(\S+)\]->\((\S+)\) x\d+$")


def parse_schema_summary(summary: str) -> MiniSchema:
    """Parse the :meth:`GraphSchema.describe` text back into a view."""
    schema = MiniSchema()
    mode = None
    for line in summary.splitlines():
        if line.startswith("Node labels"):
            mode = "node"
            continue
        if line.startswith("Edge labels"):
            mode = "edge"
            continue
        if line.startswith("Connections"):
            mode = "conn"
            continue
        if mode == "conn":
            match = _SUMMARY_CONN_RE.match(line)
            if match:
                schema.connections.append(match.groups())
            continue
        match = _SUMMARY_NODE_RE.match(line)
        if match:
            label, keys = match.groups()
            key_list = (
                [] if keys.strip() == "(none)"
                else [key.strip() for key in keys.split(",")]
            )
            if mode == "node":
                schema.node_properties[label] = key_list
            elif mode == "edge":
                schema.edge_properties[label] = key_list
    return schema
