"""LLM client abstraction and token/latency accounting.

Every completion carries its prompt/completion token counts and a
*simulated* latency computed from the model's throughput profile; a
:class:`SimulatedClock` accumulates them so the mining pipelines can
report Table 5-style wall times deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol


@dataclass(frozen=True)
class Completion:
    """One LLM response."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    latency_seconds: float
    model: str


class LLMClient(Protocol):
    """Anything that can answer prompts (the pipelines depend only on
    this protocol, so a real API-backed client can be dropped in)."""

    name: str

    def complete(self, prompt: str) -> Completion:  # pragma: no cover
        ...


@dataclass
class SimulatedClock:
    """Accumulates simulated seconds across LLM calls."""

    elapsed_seconds: float = 0.0
    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0

    def record(self, completion: Completion) -> None:
        self.elapsed_seconds += completion.latency_seconds
        self.calls += 1
        self.prompt_tokens += completion.prompt_tokens
        self.completion_tokens += completion.completion_tokens

    def reset(self) -> None:
        self.elapsed_seconds = 0.0
        self.calls = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0


@dataclass
class CallLog:
    """Optional per-call trace for debugging and the examples."""

    entries: list[Completion] = field(default_factory=list)

    def record(self, completion: Completion) -> None:
        self.entries.append(completion)

    def __len__(self) -> int:
        return len(self.entries)
