"""Analytic latency model for locally-served LLMs.

Table 5's wall times come from an M2 MacBook running LLaMA-3 and Mixtral
locally.  Offline we model latency per call as::

    latency = overhead + prompt_tokens / prefill_tps
                       + completion_tokens / decode_tps

which reproduces the table's mechanics: sliding-window mining issues one
call per 8,000-token window (time grows with graph size), RAG issues a
single call over a few retrieved chunks (near-constant seconds), and
few-shot runs *faster* despite the larger prompt because it yields fewer
rules and therefore fewer completion tokens per window.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Throughput profile of one locally-served model."""

    prefill_tps: float      # prompt tokens processed per second
    decode_tps: float       # completion tokens generated per second
    overhead_seconds: float  # per-call fixed cost (tokenize, schedule)

    def latency(self, prompt_tokens: int, completion_tokens: int) -> float:
        """Simulated seconds for one call."""
        return (
            self.overhead_seconds
            + prompt_tokens / self.prefill_tps
            + completion_tokens / self.decode_tps
        )


#: Throughputs chosen so the Table 5 shape holds on the generated
#: datasets: SWA on WWC2019 lands in the hundreds of seconds, Twitter
#: roughly doubles it, and RAG stays in single-digit seconds.  Mixtral
#: (8x7B MoE) prefills a little slower but decodes comparably.
LLAMA3_LATENCY = LatencyModel(
    prefill_tps=4000.0, decode_tps=95.0, overhead_seconds=0.35
)
MIXTRAL_LATENCY = LatencyModel(
    prefill_tps=4200.0, decode_tps=90.0, overhead_seconds=0.40
)
