"""Simulated LLM substrate: profiles, prompt parsing, induction, faults."""

from repro.llm.base import CallLog, Completion, LLMClient, SimulatedClock
from repro.llm.faults import (
    HALLUCINATED_PROPERTY_POOL,
    FlakyLLM,
    InjectionResult,
    TransientFaultInjector,
    TransientLLMError,
    flip_first_direction,
    inject_property_fault,
    inject_syntax_fault,
    maybe_inject,
)
from repro.llm.induction import (
    FORMAT_DETECTORS,
    InductionEngine,
    Proposal,
    TIME_PROPERTY_NAMES,
)
from repro.llm.profiles import (
    DISPLAY_NAMES,
    LLAMA3_PROFILE,
    MIXTRAL_PROFILE,
    MODEL_NAMES,
    PROFILES,
    ModelProfile,
    get_profile,
)
from repro.llm.prompt_io import (
    EdgeObservation,
    MiniSchema,
    NodeObservation,
    VisibleGraphView,
    extract_section,
    parse_schema_summary,
    parse_visible_graph,
)
from repro.llm.simulated import SimulatedLLM
from repro.llm.timing import LLAMA3_LATENCY, MIXTRAL_LATENCY, LatencyModel

__all__ = [
    "CallLog",
    "Completion",
    "DISPLAY_NAMES",
    "EdgeObservation",
    "FORMAT_DETECTORS",
    "FlakyLLM",
    "HALLUCINATED_PROPERTY_POOL",
    "InductionEngine",
    "InjectionResult",
    "LLAMA3_LATENCY",
    "LLAMA3_PROFILE",
    "LLMClient",
    "LatencyModel",
    "MIXTRAL_LATENCY",
    "MIXTRAL_PROFILE",
    "MODEL_NAMES",
    "MiniSchema",
    "ModelProfile",
    "NodeObservation",
    "PROFILES",
    "Proposal",
    "SimulatedClock",
    "SimulatedLLM",
    "TIME_PROPERTY_NAMES",
    "TransientFaultInjector",
    "TransientLLMError",
    "VisibleGraphView",
    "extract_section",
    "flip_first_direction",
    "get_profile",
    "inject_property_fault",
    "inject_syntax_fault",
    "maybe_inject",
    "parse_schema_summary",
    "parse_visible_graph",
]
