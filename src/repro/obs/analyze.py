"""Trace intelligence: offline analysis of recorded JSONL traces.

A recorded trace (``--trace-out``) answers "what happened"; this module
answers the paper's cost questions — *where did the tokens go*, *which
stage is the critical path* — by reconstructing the span forest and
rolling LLM costs up along it:

* :func:`aggregate_names` — per-span-name totals with **self** wall time
  (inclusive minus children), the profiler's top-N table;
* :func:`critical_path` — the heaviest root-to-leaf chain by wall or
  simulated time;
* :func:`attribute_costs` — every ``llm.call``'s tokens/sim-time rolled
  up to the nearest enclosing rule, window, dataset, job or stage, so
  attribution totals always equal the run's token totals;
* :func:`flamegraph_folded` — Brendan-Gregg folded-stack text
  (``flamegraph.pl`` / speedscope compatible);
* :func:`chrome_trace` — Chrome ``chrome://tracing`` / Perfetto
  ``trace_event`` JSON, one lane per recorded thread.

Everything operates on :class:`~repro.obs.export.ParsedTrace`, so the
analysis is decoupled from the live collector and works on any archived
trace file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs.export import ParsedSpan, ParsedTrace, parse_jsonl

__all__ = [
    "ATTRIBUTION_MODES",
    "CostRow",
    "NameStats",
    "aggregate_names",
    "attribute_costs",
    "chrome_trace",
    "critical_path",
    "flamegraph_folded",
    "load_trace",
    "span_tokens",
]

#: supported ``--attr`` grouping modes for :func:`attribute_costs`
ATTRIBUTION_MODES = ("rule", "window", "dataset", "job", "stage")

#: spans carrying these attributes are treated as cost-bearing LLM calls
_TOKEN_ATTRS = ("prompt_tokens", "completion_tokens")


def load_trace(path: str) -> ParsedTrace:
    """Read and reconstruct one JSONL trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read())


def span_tokens(span: ParsedSpan) -> int:
    """Total tokens recorded on one span (0 for non-LLM spans)."""
    return sum(int(span.attributes.get(key, 0) or 0) for key in _TOKEN_ATTRS)


# ----------------------------------------------------------------------
# per-name aggregation (profiler top-N)
# ----------------------------------------------------------------------
@dataclass
class NameStats:
    """Aggregate over all spans sharing one name, with self time."""

    name: str
    count: int = 0
    wall_seconds: float = 0.0        # inclusive (children counted)
    self_wall_seconds: float = 0.0   # exclusive (children subtracted)
    sim_seconds: float = 0.0
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


def _roots(trace: ParsedTrace | ParsedSpan) -> list[ParsedSpan]:
    if isinstance(trace, ParsedSpan):
        return [trace]
    return trace.roots


def aggregate_names(
    trace: ParsedTrace | ParsedSpan,
) -> dict[str, NameStats]:
    """Per-name totals; ``self_wall_seconds`` subtracts child time so a
    parent span does not double-bill the work of its children."""
    stats: dict[str, NameStats] = {}
    for root in _roots(trace):
        for span in root.walk():
            entry = stats.get(span.name)
            if entry is None:
                entry = stats[span.name] = NameStats(name=span.name)
            child_wall = sum(c.wall_seconds for c in span.children)
            entry.count += 1
            entry.wall_seconds += span.wall_seconds
            entry.self_wall_seconds += max(
                0.0, span.wall_seconds - child_wall
            )
            entry.sim_seconds += span.sim_seconds
            entry.prompt_tokens += int(
                span.attributes.get("prompt_tokens", 0) or 0
            )
            entry.completion_tokens += int(
                span.attributes.get("completion_tokens", 0) or 0
            )
    return stats


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
def _subtree_metric(span: ParsedSpan, metric: str) -> float:
    if metric == "wall":
        # wall is recorded inclusively: the span's own duration covers
        # its (same-thread) children
        return span.wall_seconds
    return span.sim_seconds + sum(
        _subtree_metric(child, metric) for child in span.children
    )


def critical_path(
    root: ParsedSpan, metric: str = "wall"
) -> list[tuple[ParsedSpan, float]]:
    """The heaviest chain from ``root`` to a leaf.

    At each level the child with the largest subtree total (by ``metric``:
    ``wall`` or ``sim``) is followed; the returned list pairs each span on
    the chain with that subtree total — the profiler's "where would
    speeding things up actually shorten the run" view.
    """
    if metric not in ("wall", "sim"):
        raise ValueError(f"metric must be 'wall' or 'sim', got {metric!r}")
    path = [(root, _subtree_metric(root, metric))]
    node = root
    while node.children:
        node = max(
            node.children, key=lambda c: _subtree_metric(c, metric)
        )
        path.append((node, _subtree_metric(node, metric)))
    return path


# ----------------------------------------------------------------------
# cost attribution
# ----------------------------------------------------------------------
@dataclass
class CostRow:
    """Rolled-up LLM cost for one attribution group."""

    key: str
    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


def _attribution_key(
    mode: str, ancestry: list[ParsedSpan], span: ParsedSpan
) -> str:
    """The group for one LLM-call span; ``ancestry`` is outermost-first
    and includes ``span`` itself as the last element."""
    if mode == "rule":
        for node in reversed(ancestry):
            if "rule" in node.attributes:
                return str(node.attributes["rule"])
        return "(mining: no rule yet)"
    if mode == "window":
        for node in reversed(ancestry):
            if node.name == "window":
                return f"window {node.attributes.get('index', '?')}"
        return "(outside windows)"
    if mode == "dataset":
        for node in reversed(ancestry):
            if "dataset" in node.attributes:
                return str(node.attributes["dataset"])
        return "(no dataset)"
    if mode == "job":
        for node in reversed(ancestry):
            if "job_id" in node.attributes:
                return str(node.attributes["job_id"])
        return "(no job)"
    if mode == "stage":
        # the nearest non-LLM ancestor names the pipeline stage the
        # call was made from (window → mining, translate → cypher, ...)
        for node in reversed(ancestry[:-1]):
            if not node.name.startswith("llm."):
                return node.name
        return "(root)"
    raise ValueError(
        f"unknown attribution mode {mode!r}; one of {ATTRIBUTION_MODES}"
    )


def attribute_costs(
    trace: ParsedTrace | ParsedSpan, by: str = "stage"
) -> list[CostRow]:
    """Roll every LLM call's cost up to its nearest enclosing group.

    Each cost-bearing span (one carrying token attributes) is attributed
    to exactly one group, so the rows' token totals always sum to the
    trace's total LLM tokens — the invariant that lets ``profile`` output
    be cross-checked against :class:`~repro.mining.result.MiningRun`
    token totals.
    """
    rows: dict[str, CostRow] = {}

    def visit(span: ParsedSpan, ancestry: list[ParsedSpan]) -> None:
        ancestry.append(span)
        if any(key in span.attributes for key in _TOKEN_ATTRS):
            group = _attribution_key(by, ancestry, span)
            row = rows.get(group)
            if row is None:
                row = rows[group] = CostRow(key=group)
            row.calls += 1
            row.prompt_tokens += int(
                span.attributes.get("prompt_tokens", 0) or 0
            )
            row.completion_tokens += int(
                span.attributes.get("completion_tokens", 0) or 0
            )
            row.sim_seconds += span.sim_seconds
            row.wall_seconds += span.wall_seconds
        for child in span.children:
            visit(child, ancestry)
        ancestry.pop()

    for root in _roots(trace):
        visit(root, [])
    return sorted(rows.values(), key=lambda row: (-row.tokens, row.key))


# ----------------------------------------------------------------------
# flamegraph (folded stacks)
# ----------------------------------------------------------------------
def _self_value(span: ParsedSpan, metric: str) -> float:
    if metric == "wall":
        child = sum(c.wall_seconds for c in span.children)
        return max(0.0, span.wall_seconds - child) * 1e6   # µs
    if metric == "sim":
        below = sum(
            item.sim_seconds for item in span.walk() if item is not span
        )
        # pipeline roll-up spans re-record their subtree's total sim
        # time; subtracting the descendants keeps each simulated second
        # in exactly one frame
        return max(0.0, span.sim_seconds - below) * 1e6    # µs
    if metric == "tokens":
        return float(span_tokens(span))
    raise ValueError(
        f"metric must be 'wall', 'sim' or 'tokens', got {metric!r}"
    )


def flamegraph_folded(
    trace: ParsedTrace | ParsedSpan, metric: str = "wall"
) -> str:
    """Folded-stack text: ``root;child;leaf <count>`` per unique path.

    Counts are self values — wall/sim in integer microseconds, or
    tokens — so ``flamegraph.pl`` and speedscope render frame widths
    proportional to exclusive cost.
    """
    stacks: dict[tuple[str, ...], float] = {}

    def visit(span: ParsedSpan, prefix: tuple[str, ...]) -> None:
        path = prefix + (span.name,)
        value = _self_value(span, metric)
        if value > 0:
            stacks[path] = stacks.get(path, 0.0) + value
        for child in span.children:
            visit(child, path)

    for root in _roots(trace):
        visit(root, ())
    lines = [
        f"{';'.join(path)} {int(round(value))}"
        for path, value in sorted(stacks.items())
        if int(round(value)) > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace(trace: ParsedTrace | ParsedSpan) -> str:
    """Chrome ``trace_event`` JSON: complete ("X") events, one lane per
    recorded thread, timestamps rebased to the earliest span."""
    spans = [
        span for root in _roots(trace) for span in root.walk()
    ]
    base = min((span.start for span in spans), default=0.0)
    thread_ids: dict[str, int] = {}
    events: list[dict[str, object]] = []
    for span in spans:
        thread = span.thread or "main"
        tid = thread_ids.setdefault(thread, len(thread_ids) + 1)
        events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": round((span.start - base) * 1e6, 3),
            "dur": round(span.wall_seconds * 1e6, 3),
            "args": dict(span.attributes, sim_seconds=span.sim_seconds),
        })
    for thread, tid in thread_ids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        })
    return json.dumps({"traceEvents": events}, default=str)
