"""Cross-thread trace-context propagation.

:class:`~repro.obs.trace.TraceCollector` keeps one span stack per
thread, so a span opened on a worker thread becomes an *orphan root*
even when, logically, it belongs to work started elsewhere — a mining
job submitted on the client thread and executed by the pool, or a
window prompted on a parallel-pipeline replica thread.

:func:`capture` snapshots the calling thread's current span; the
returned :class:`TraceContext` travels with the unit of work (a queue
item, a thread argument) and :meth:`TraceContext.attach` re-establishes
the captured span as the parent on the executing thread::

    ctx = propagate.capture()            # producer thread

    def worker() -> None:                # consumer thread
        with ctx.attach():
            with obs.span("job"):        # child of the captured span
                ...

Everything degrades to a no-op when no collector is installed (or when
the collector changed between capture and attach), so propagation can
stay default-on in the service and pipeline hot paths.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.trace import Span, TraceCollector, get_collector

__all__ = [
    "EMPTY_CONTEXT",
    "TraceContext",
    "capture",
    "wrap",
]


class TraceContext:
    """An immutable snapshot of one thread's tracing position."""

    __slots__ = ("collector", "span")

    def __init__(
        self,
        collector: TraceCollector | None,
        span: Span | None,
    ) -> None:
        self.collector = collector
        self.span = span

    @property
    def active(self) -> bool:
        """True when attaching would actually re-parent new spans."""
        return (
            self.collector is not None
            and self.span is not None
            and get_collector() is self.collector
        )

    def attach(self) -> "_Attachment":
        """Context manager parenting this thread's new spans under the
        captured span for the duration of the ``with`` block."""
        return _Attachment(self)

    def wrap(self, fn: Callable) -> Callable:
        """Bind ``fn`` so every call runs under this context."""

        def attached(*args, **kwargs):
            with self.attach():
                return fn(*args, **kwargs)

        return attached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.span.name if self.span is not None else None
        return f"TraceContext(span={name!r}, active={self.active})"


#: shared inert context: attach() is a no-op (no collector at capture)
EMPTY_CONTEXT = TraceContext(None, None)


class _Attachment:
    """The ``with ctx.attach():`` guard; safe to enter on any thread."""

    __slots__ = ("_context", "_attached")

    def __init__(self, context: TraceContext) -> None:
        self._context = context
        self._attached = False

    def __enter__(self) -> TraceContext:
        context = self._context
        if context.active:
            context.collector.adopt_span(context.span)
            self._attached = True
        return context

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._attached:
            self._context.collector.release_span(self._context.span)
            self._attached = False
        return False


def capture() -> TraceContext:
    """Snapshot the calling thread's collector + innermost open span.

    Returns :data:`EMPTY_CONTEXT` when no collector is installed, so the
    result is always attachable without None checks.
    """
    collector = get_collector()
    if collector is None:
        return EMPTY_CONTEXT
    return TraceContext(collector, collector.current_span())


def wrap(fn: Callable) -> Callable:
    """Capture *now* and return ``fn`` bound to the captured context —
    the one-liner for handing callbacks across thread boundaries."""
    return capture().wrap(fn)
