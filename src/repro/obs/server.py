"""Live telemetry over HTTP: /metrics, /healthz, /jobs.

A tiny stdlib :mod:`http.server` wrapper that exposes the *live*
metrics registry while a run is in flight — the pull model Prometheus
expects, with a JSON health probe and a job-service snapshot besides::

    server = TelemetryServer(
        registry=lambda: collector.metrics,
        jobs=service.telemetry,          # injected; obs stays layered
    )
    with server:
        print(server.url)               # http://127.0.0.1:<port>

Endpoints
---------
``GET /metrics``
    Prometheus exposition text rendered from the registry provider
    (``503`` when no registry is available — e.g. collector uninstalled).
``GET /healthz``
    ``{"status": "ok", "uptime_seconds": <float>}`` — liveness probe.
``GET /jobs``
    Whatever the injected jobs provider returns, as JSON; ``404`` when
    no job service is attached.

Providers are zero-argument callables resolved per request, so the
server layer holds no references into higher layers (``repro.service``
injects itself through the experiments CLI, keeping the layer cake
intact).
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_collector

__all__ = [
    "JsonRequestHandler",
    "TelemetryServer",
]

RegistryProvider = Callable[[], Optional[MetricsRegistry]]
JobsProvider = Callable[[], dict]

#: refuse request bodies beyond this size — a serving front door must
#: bound memory per request before it ever parses anything
MAX_BODY_BYTES = 1 << 20


def _live_registry() -> MetricsRegistry | None:
    """Default registry provider: the installed collector's registry."""
    collector = get_collector()
    return collector.metrics if collector is not None else None


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Shared plumbing for the repo's stdlib HTTP services.

    Both the telemetry server and the gateway front door speak small
    JSON payloads over :mod:`http.server`; this base centralises framed
    sends, JSON encoding, bounded body reads and log suppression so
    each service only writes its routes.
    """

    server_version = "repro-http/1"

    #: per-request correlation state (reset in :meth:`handle_one_request`)
    _request_id: Optional[str] = None
    _last_status: Optional[int] = None

    def handle_one_request(self) -> None:  # noqa - http.server naming
        self._request_id = None
        self._last_status = None
        super().handle_one_request()

    def correlation_id(self) -> str:
        """The request's correlation id: echo the client's
        ``X-Request-Id`` when present (sanitised), else mint one.  The
        id is stable for the request's lifetime — the response header
        and every structured log line carry the same value."""
        if self._request_id:
            return self._request_id
        incoming = None
        headers = getattr(self, "headers", None)
        if headers is not None:
            incoming = headers.get("X-Request-Id")
        if isinstance(incoming, str):
            incoming = "".join(
                ch for ch in incoming.strip()[:128]
                if ch.isalnum() or ch in "-_.:"
            )
        self._request_id = incoming or os.urandom(8).hex()
        return self._request_id

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", self.correlation_id())
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        self._send(
            status,
            json.dumps(payload, default=str).encode("utf-8"),
            "application/json; charset=utf-8",
            headers=headers,
        )

    def _read_json_body(self) -> dict:
        """Parse the request body as a JSON object.

        Raises ``ValueError`` on oversized, malformed or non-object
        bodies — callers translate that into a 400/413.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def log_message(self, format: str, *args: object) -> None:
        return None  # serving probes must not spam stderr


class _Handler(JsonRequestHandler):
    """Routes the three endpoints; server state rides on ``self.server``."""

    server_version = "repro-telemetry/1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa - http.server naming convention
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._metrics()
            elif path == "/healthz":
                self._healthz()
            elif path == "/jobs":
                self._jobs()
            else:
                self._send_json(404, {
                    "error": "not found",
                    "endpoints": ["/metrics", "/healthz", "/jobs"],
                })
        except Exception as error:  # noqa - a probe must never kill serving
            self._send_json(500, {"error": str(error)})

    def _metrics(self) -> None:
        registry = self.server.registry_provider()
        if registry is None:
            self._send_json(503, {"error": "no metrics registry installed"})
            return
        self._send(
            200,
            prometheus_text(registry).encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _healthz(self) -> None:
        self._send_json(200, {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self.server.started_at,
        })

    def _jobs(self) -> None:
        provider = self.server.jobs_provider
        if provider is None:
            self._send_json(404, {"error": "no job service attached"})
            return
        self._send_json(200, provider())


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    registry_provider: RegistryProvider
    jobs_provider: JobsProvider | None
    started_at: float


class TelemetryServer:
    """Serve live telemetry on a background daemon thread.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after :meth:`start`); the server is a context manager, so CLI and
    tests get deterministic shutdown.
    """

    def __init__(
        self,
        registry: RegistryProvider | MetricsRegistry | None = None,
        jobs: JobsProvider | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if isinstance(registry, MetricsRegistry):
            fixed = registry
            self.registry_provider: RegistryProvider = lambda: fixed
        else:
            self.registry_provider = registry or _live_registry
        self.jobs_provider = jobs
        self.host = host
        self.requested_port = port
        self._httpd: _Server | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        httpd = _Server((self.host, self.requested_port), _Handler)
        httpd.registry_provider = self.registry_provider
        httpd.jobs_provider = self.jobs_provider
        httpd.started_at = time.monotonic()
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="obs-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
