"""Exporters: JSONL event log, Prometheus text dump, summary table.

The JSONL format is line-per-record: ``{"type": "span", ...}`` rows in
depth-first tree order followed by ``{"type": "metric", ...}`` rows.
:func:`parse_jsonl` round-trips the span rows back into a tree of
:class:`ParsedSpan` for offline analysis and the tests.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import TraceCollector

__all__ = [
    "ParsedSpan",
    "ParsedTrace",
    "parse_jsonl",
    "prometheus_text",
    "render_rows",
    "summary_table",
    "to_jsonl",
    "write_jsonl",
]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl(collector: TraceCollector) -> str:
    """Serialise the collector's spans and metrics, one JSON per line."""
    lines: list[str] = []
    for item in collector.iter_spans():
        lines.append(json.dumps({
            "type": "span",
            "id": item.span_id,
            "parent": item.parent_id,
            "name": item.name,
            "start": item.start_wall,
            "end": item.end_wall,
            "wall_seconds": item.wall_seconds,
            "sim_seconds": item.sim_seconds,
            "thread": item.thread,
            "attributes": item.attributes,
        }, sort_keys=True, default=str))
    for instrument in collector.metrics.collect():
        if isinstance(instrument, Histogram):
            for labels, _state in instrument.samples():
                snap = instrument.snapshot(**labels)
                lines.append(json.dumps({
                    "type": "metric",
                    "kind": "histogram",
                    "name": instrument.name,
                    "labels": labels,
                    "buckets": list(snap.buckets),
                    "counts": list(snap.counts),
                    "count": snap.count,
                    "sum": snap.sum,
                }, sort_keys=True, default=str))
        else:
            for labels, value in instrument.samples():
                lines.append(json.dumps({
                    "type": "metric",
                    "kind": instrument.kind,
                    "name": instrument.name,
                    "labels": labels,
                    "value": value,
                }, sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(collector: TraceCollector, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(collector))


@dataclass
class ParsedSpan:
    """A span rebuilt from a JSONL trace."""

    span_id: int
    parent_id: int | None
    name: str
    wall_seconds: float
    sim_seconds: float
    attributes: dict[str, object]
    children: list["ParsedSpan"] = field(default_factory=list)
    start: float = 0.0
    end: float | None = None
    thread: str = ""

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class ParsedTrace:
    """Everything read back from one JSONL trace."""

    roots: list[ParsedSpan]
    metrics: list[dict[str, object]]

    def spans(self):
        for root in self.roots:
            yield from root.walk()

    def span_names(self) -> set[str]:
        return {item.name for item in self.spans()}

    def counter_value(self, name: str) -> float:
        """Sum of one counter across every label combination."""
        return sum(
            record["value"] for record in self.metrics
            if record["kind"] == "counter" and record["name"] == name
        )


def parse_jsonl(text: str) -> ParsedTrace:
    """Rebuild the span forest and metric records from JSONL text."""
    by_id: dict[int, ParsedSpan] = {}
    roots: list[ParsedSpan] = []
    metrics: list[dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record["type"] == "metric":
            metrics.append(record)
            continue
        parsed = ParsedSpan(
            span_id=record["id"],
            parent_id=record["parent"],
            name=record["name"],
            wall_seconds=record["wall_seconds"],
            sim_seconds=record["sim_seconds"],
            attributes=record["attributes"],
            start=record.get("start", 0.0),
            end=record.get("end"),
            thread=record.get("thread", ""),
        )
        by_id[parsed.span_id] = parsed
        parent = by_id.get(parsed.parent_id)
        if parent is not None:
            parent.children.append(parsed)
        else:
            roots.append(parsed)
    return ParsedTrace(roots=roots, metrics=metrics)


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    # exposition-format metric names must not start with a digit
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_escape(value: object) -> str:
    """Escape a label value per the exposition format: backslash,
    double-quote and newline must be backslash-escaped."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: dict[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prom_name(str(key))}="{_prom_escape(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_labels(labels: dict[str, object], **extra: object) -> str:
    merged = dict(labels)
    merged.update(extra)
    return _prom_labels(merged)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition-format dump of every instrument."""
    lines: list[str] = []
    for instrument in registry.collect():
        name = _prom_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            for labels, value in instrument.samples():
                lines.append(f"{name}{_prom_labels(labels)} {value}")
        elif isinstance(instrument, Histogram):
            for labels, _state in instrument.samples():
                snap = instrument.snapshot(**labels)
                cumulative = snap.cumulative()
                for bound, count in zip(snap.buckets, cumulative):
                    lines.append(
                        f"{name}_bucket"
                        f"{_merge_labels(labels, le=bound)} {count}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f'{_merge_labels(labels, le="+Inf")} {snap.count}'
                )
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} {snap.sum}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} {snap.count}"
                )
                # estimated quantiles as untyped companion series (the
                # histogram TYPE above stays conformant; dashboards that
                # cannot run histogram_quantile() read these directly)
                for key, estimate in snap.percentiles().items():
                    lines.append(
                        f"{name}_{key}{_prom_labels(labels)} "
                        f"{estimate:.6g}"
                    )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# human-readable summary
# ----------------------------------------------------------------------
def render_rows(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells: list[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    out = [fmt(headers), fmt(["-" * width for width in widths])]
    out.extend(fmt(row) for row in rows)
    return out


def summary_table(collector: TraceCollector) -> str:
    """Aggregated span timings plus counter totals, as fixed-width text."""
    lines: list[str] = ["== observability summary =="]

    stats = collector.aggregate()
    span_rows = [
        [
            entry.name,
            str(entry.count),
            f"{entry.wall_seconds:.4f}",
            f"{entry.sim_seconds:.2f}",
        ]
        for entry in sorted(
            stats.values(), key=lambda s: (-s.sim_seconds, -s.wall_seconds)
        )
    ]
    lines.append("")
    lines.append("spans (aggregated by name)")
    lines.extend(render_rows(
        ["span", "count", "wall s", "sim s"], span_rows
    ))

    counter_rows: list[list[str]] = []
    gauge_rows: list[list[str]] = []
    histogram_rows: list[list[str]] = []
    for instrument in collector.metrics.collect():
        if isinstance(instrument, Histogram):
            for labels, _state in instrument.samples():
                snap = instrument.snapshot(**labels)
                label_text = ",".join(
                    f"{key}={item}" for key, item in sorted(labels.items())
                )
                histogram_rows.append([
                    instrument.name,
                    label_text,
                    str(snap.count),
                    f"{snap.sum:.4g}",
                    f"{snap.quantile(0.50):.4g}",
                    f"{snap.quantile(0.95):.4g}",
                    f"{snap.quantile(0.99):.4g}",
                ])
            continue
        for labels, value in instrument.samples():
            label_text = ",".join(
                f"{key}={item}" for key, item in sorted(labels.items())
            )
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            rendered = str(value) if isinstance(value, int) else f"{value:g}"
            row = [instrument.name, label_text, rendered]
            if isinstance(instrument, Counter):
                counter_rows.append(row)
            else:
                gauge_rows.append(row)
    if counter_rows:
        lines.append("")
        lines.append("counters")
        lines.extend(render_rows(["counter", "labels", "value"], counter_rows))
    if gauge_rows:
        lines.append("")
        lines.append("gauges")
        lines.extend(render_rows(["gauge", "labels", "value"], gauge_rows))
    if histogram_rows:
        lines.append("")
        lines.append("histograms (p50/p95/p99 interpolated from buckets)")
        lines.extend(render_rows(
            ["histogram", "labels", "count", "sum", "p50", "p95", "p99"],
            histogram_rows,
        ))
    return "\n".join(lines)
