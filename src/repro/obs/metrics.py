"""Metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are labelled (Prometheus-style) and thread-safe, so the
parallel mining pipeline's workers can record concurrently.  Values live
in plain dicts keyed by a sorted label tuple; every mutation happens
under the instrument's lock.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
]

LabelKey = tuple[tuple[str, object], ...]

#: Default latency-ish buckets, in seconds (upper bounds; +Inf implicit).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items()))


class _Instrument:
    """Shared plumbing: name, help text, lock, labelled value store."""

    kind = "instrument"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[LabelKey, object] = {}

    def samples(self) -> list[tuple[dict[str, object], object]]:
        """Every (labels, value) pair, sorted by label key."""
        with self._lock:
            items = sorted(self._values.items())
        return [(dict(key), value) for key, value in items]


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Point-in-time histogram state for one label combination."""

    buckets: tuple[float, ...]        # upper bounds, +Inf implicit last
    counts: tuple[int, ...]           # len(buckets) + 1 entries
    count: int
    sum: float

    def cumulative(self) -> tuple[int, ...]:
        """Prometheus-style cumulative bucket counts (incl. +Inf)."""
        total = 0
        out = []
        for value in self.counts:
            total += value
            out.append(total)
        return tuple(out)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile by linear interpolation within buckets.

        The estimator assumes observations are uniformly spread inside
        their bucket (the classic Prometheus ``histogram_quantile``
        model): the first bucket interpolates from 0, and ranks landing
        in the +Inf overflow bucket clamp to the largest finite bound.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.buckets, self.counts):
            if bucket_count and cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                return lower + (bound - lower) * max(0.0, fraction)
            cumulative += bucket_count
            lower = bound
        return self.buckets[-1]

    def percentiles(self) -> dict[str, float]:
        """The standard reporting trio: p50 / p95 / p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Histogram(_Instrument):
    """Fixed-bucket histogram of observations."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        super().__init__(name, help=help)
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(sorted(buckets))
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram bucket bounds must be distinct")
        self.buckets = ordered

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        # bucket i counts observations <= buckets[i]; the final slot is
        # the +Inf overflow bucket
        index = bisect_left(self.buckets, value)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = self._values[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "count": 0,
                    "sum": 0.0,
                }
            state["counts"][index] += 1
            state["count"] += 1
            state["sum"] += value

    def snapshot(self, **labels: object) -> HistogramSnapshot:
        key = _label_key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                return HistogramSnapshot(
                    buckets=self.buckets,
                    counts=tuple([0] * (len(self.buckets) + 1)),
                    count=0,
                    sum=0.0,
                )
            return HistogramSnapshot(
                buckets=self.buckets,
                counts=tuple(state["counts"]),
                count=state["count"],
                sum=state["sum"],
            )


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    returns the same instrument; asking for an existing name with a
    different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name,
            buckets=DEFAULT_BUCKETS if buckets is None else buckets,
            help=help,
        )

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def collect(self) -> list[_Instrument]:
        """All instruments, sorted by name."""
        with self._lock:
            return [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]

    def snapshot(self, prefix: str | None = None) -> dict[str, dict]:
        """JSON-serialisable registry state, optionally prefix-filtered.

        Counters and gauges render their labelled samples verbatim;
        histograms reduce to count / sum / p50-p95-p99 per label set.
        This is the plain-dict companion of the Prometheus exposition —
        the gateway's ``/stats`` endpoint and tests read it without a
        text parser.
        """
        out: dict[str, dict] = {}
        for instrument in self.collect():
            if prefix is not None and not instrument.name.startswith(prefix):
                continue
            samples = []
            for labels, value in instrument.samples():
                if isinstance(instrument, Histogram):
                    snap = instrument.snapshot(**labels)
                    rendered: object = {
                        "count": snap.count,
                        "sum": snap.sum,
                        **snap.percentiles(),
                    }
                else:
                    rendered = value
                samples.append({"labels": labels, "value": rendered})
            out[instrument.name] = {
                "kind": instrument.kind,
                "samples": samples,
            }
        return out
