"""Distributed tracing: one connected span tree across process lines.

The in-process tracer (:mod:`repro.obs.trace` + :mod:`repro.obs
.propagate`) guarantees every mining job one connected span tree — but
only within a single process.  The gateway fleet breaks that invariant:
the HTTP front door, the dispatcher threads and N worker *processes*
each see a fragment of one logical job.  This module carries trace
identity over process boundaries and stitches the fragments back into
the single tree :mod:`repro.obs.analyze` already consumes:

* **traceparent** — a W3C-style ``00-<32 hex trace>-<16 hex span>-01``
  header minted (or adopted from the client) per gateway job and
  forwarded on the worker wire, so every process agrees on one trace id;
* **wire spans** — :func:`span_to_wire` / :func:`span_from_wire`
  serialise a finished span tree as nested dicts with *relative* start
  offsets (no ids, no absolute clocks: the sender's clock never leaves
  its process) so a worker can ship its completed spans home;
* **TraceAssembler** — the gateway-side stitcher.  It builds the job's
  root span and its serving phases (queue wait, dispatch attempts,
  requeues) from the gateway's own clock, grafts worker fragments under
  the matching attempt — rebased into the gateway timeline — and
  publishes the finished tree into the installed collector, where
  ``--trace-out`` / ``repro-experiments profile`` pick it up unchanged.

Everything here runs inside ``repro.obs``, the one layer allowed to own
real time; the assembler clock stays injectable for deterministic tests.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Callable, Mapping, Optional

from repro.obs.trace import Span, TraceCollector, get_collector

__all__ = [
    "TraceAssembler",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "span_from_wire",
    "span_to_wire",
]

_TRACEPARENT_VERSION = "00"
_FLAG_SAMPLED = "01"
_TRACE_ID_CHARS = 32
_SPAN_ID_CHARS = 16


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex characters."""
    return os.urandom(_TRACE_ID_CHARS // 2).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex characters."""
    return os.urandom(_SPAN_ID_CHARS // 2).hex()


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a ``version-trace_id-parent_id-flags`` traceparent."""
    return "-".join(
        (_TRACEPARENT_VERSION, trace_id, span_id, _FLAG_SAMPLED)
    )


def _is_hex(value: str, length: int) -> bool:
    if len(value) != length:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def parse_traceparent(header: object) -> Optional[tuple[str, str]]:
    """``(trace_id, parent_span_id)`` from a traceparent, or ``None``.

    Follows the W3C posture for inbound context: a malformed header is
    *ignored* (the caller mints a fresh trace) rather than rejected —
    tracing must never turn a valid job submission into an error.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id = parts[0], parts[1], parts[2]
    if not _is_hex(version, 2) or version == "ff":
        return None
    if not _is_hex(trace_id, _TRACE_ID_CHARS) or set(trace_id) == {"0"}:
        return None
    if not _is_hex(span_id, _SPAN_ID_CHARS) or set(span_id) == {"0"}:
        return None
    return trace_id, span_id


# ----------------------------------------------------------------------
# wire serialisation
# ----------------------------------------------------------------------
def _wire_value(value: object) -> object:
    """Attribute values must survive ``json.dumps`` on the worker wire."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def span_to_wire(span: Span, base: float | None = None) -> dict:
    """One finished span tree as nested plain dicts.

    Start/end times become offsets relative to ``base`` (default: the
    span's own start), so the payload carries no absolute clock readings
    — the receiver rebases it into its own timeline.  Ids are omitted on
    purpose: tree structure is the nesting, and the receiving collector
    allocates fresh ids at graft time.
    """
    if base is None:
        base = span.start_wall
    return {
        "name": span.name,
        "start": span.start_wall - base,
        "end": (
            span.end_wall - base if span.end_wall is not None else None
        ),
        "sim": span.sim_seconds,
        "thread": span.thread,
        "attrs": {
            key: _wire_value(value)
            for key, value in span.attributes.items()
        },
        "children": [
            span_to_wire(child, base) for child in span.children
        ],
    }


def span_from_wire(
    payload: Mapping,
    base: float,
    parent: Span | None = None,
    thread_prefix: str = "",
) -> Span:
    """Rebuild a :func:`span_to_wire` payload under a local timeline.

    ``base`` is the local-clock instant the fragment's zero offset maps
    to; ``thread_prefix`` namespaces the sender's thread names (so a
    fleet trace shows ``w1:service-worker-0`` rather than colliding with
    the gateway's own threads).  Ids are provisional (0) until the
    assembler publishes the tree through a collector.
    """
    thread = str(payload.get("thread") or "")
    if thread_prefix:
        thread = f"{thread_prefix}:{thread}" if thread else thread_prefix
    start = base + float(payload.get("start") or 0.0)
    span = Span(
        span_id=0,
        parent_id=parent.span_id if parent is not None else None,
        name=str(payload.get("name") or "unnamed"),
        attributes=dict(payload.get("attrs") or {}),
        start_wall=start,
        thread=thread,
    )
    end = payload.get("end")
    if end is not None:
        span.end_wall = base + float(end)
    span.sim_seconds = float(payload.get("sim") or 0.0)
    if parent is not None:
        parent.children.append(span)
    for child in payload.get("children") or ():
        span_from_wire(child, base, parent=span, thread_prefix=thread_prefix)
    return span


# ----------------------------------------------------------------------
# gateway-side assembly
# ----------------------------------------------------------------------
class TraceAssembler:
    """Stitches one job's fragments into a single connected span tree.

    The gateway cannot use the live per-thread span stacks for a job:
    its lifecycle crosses the HTTP thread, the dispatch loop and a
    reader thread, with arbitrary time between them.  The assembler
    instead *builds* the tree from lifecycle timestamps — a root span,
    named phases (``start_phase``/``end_phase``), zero-duration events —
    and grafts worker-shipped fragments under the matching attempt.
    :meth:`finish` closes everything and publishes the tree into the
    installed collector exactly once.

    Thread-safe; the clock is injectable (the gateway passes its own).
    """

    def __init__(
        self,
        trace_id: str | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.root_span_hex = new_span_id()
        self._clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self.root: Span | None = None
        #: per-name stacks of still-open phase spans
        self._open: dict[str, list[Span]] = {}
        self._published = False

    # ------------------------------------------------------------------
    @property
    def traceparent(self) -> str:
        """The context header forwarded to workers (and to clients)."""
        return format_traceparent(self.trace_id, self.root_span_hex)

    @property
    def finished(self) -> bool:
        return self.root is not None and self.root.finished

    # ------------------------------------------------------------------
    def begin(self, name: str = "gateway.job", **attributes: object) -> Span:
        """Open the job's root span (idempotent)."""
        with self._lock:
            if self.root is None:
                attrs = {
                    "trace_id": self.trace_id,
                    "traceparent": self.traceparent,
                    "pid": os.getpid(),
                }
                attrs.update(
                    (key, value) for key, value in attributes.items()
                    if value is not None
                )
                self.root = Span(
                    span_id=0,
                    parent_id=None,
                    name=name,
                    attributes=attrs,
                    start_wall=self._clock(),
                    thread=threading.current_thread().name,
                )
            return self.root

    def start_phase(self, name: str, **attributes: object) -> Span:
        """Open a named phase span under the root."""
        root = self.begin()
        with self._lock:
            span = Span(
                span_id=0,
                parent_id=None,
                name=name,
                attributes={
                    key: value for key, value in attributes.items()
                    if value is not None
                },
                start_wall=self._clock(),
                thread=threading.current_thread().name,
            )
            root.children.append(span)
            self._open.setdefault(name, []).append(span)
            return span

    def end_phase(self, name: str, **attributes: object) -> Span | None:
        """Close the most recently opened phase of ``name`` (or None)."""
        with self._lock:
            stack = self._open.get(name)
            if not stack:
                return None
            span = stack.pop()
            span.end_wall = self._clock()
            for key, value in attributes.items():
                if value is not None:
                    span.attributes[key] = value
            return span

    def event(self, name: str, **attributes: object) -> Span:
        """A zero-duration marker span under the root."""
        root = self.begin()
        with self._lock:
            now = self._clock()
            span = Span(
                span_id=0,
                parent_id=None,
                name=name,
                attributes={
                    key: value for key, value in attributes.items()
                    if value is not None
                },
                start_wall=now,
                thread=threading.current_thread().name,
            )
            span.end_wall = now
            root.children.append(span)
            return span

    # ------------------------------------------------------------------
    def graft(
        self,
        payload: Mapping,
        under: Span | None = None,
        worker: str = "",
    ) -> Span | None:
        """Attach a worker's wire fragment under an attempt span.

        The fragment's zero offset is rebased to the attempt's start (or
        the root's, when no attempt is given), pulling every remote span
        into the gateway's timeline; the worker's thread names get a
        ``<worker>:`` prefix so the merged tree stays legible.
        """
        if not isinstance(payload, Mapping):
            return None
        root = self.begin()
        anchor = under if under is not None else root
        fragment = span_from_wire(
            payload,
            base=anchor.start_wall,
            parent=None,
            thread_prefix=worker,
        )
        with self._lock:
            fragment.parent_id = anchor.span_id
            anchor.children.append(fragment)
        return fragment

    # ------------------------------------------------------------------
    def finish(self, **attributes: object) -> Span:
        """Close all open phases + the root, then publish the tree.

        Idempotent: a second call only restamps attributes.  Publication
        targets the collector installed *now* (if any) so traces land in
        the same export stream as every in-process span.
        """
        root = self.begin()
        with self._lock:
            end = self._clock()
            for stack in self._open.values():
                while stack:
                    leaked = stack.pop()
                    leaked.end_wall = end
            for key, value in attributes.items():
                if value is not None:
                    root.attributes[key] = value
            if root.end_wall is None:
                root.end_wall = end
        self.publish()
        return root

    def publish(self, collector: TraceCollector | None = None) -> bool:
        """Renumber the tree from the collector's id counter and add it
        as a new trace root.  Returns True the first (and only) time the
        tree is actually published."""
        target = collector if collector is not None else get_collector()
        with self._lock:
            if self._published or target is None or self.root is None:
                return False
            self._published = True
            for span in self.root.walk():
                span.span_id = target.next_span_id()
                for child in span.children:
                    child.parent_id = span.span_id
        target.add_root(self.root)
        return True

    # ------------------------------------------------------------------
    def pids(self) -> list[int]:
        """Every distinct ``pid`` attribute in the tree, sorted."""
        with self._lock:
            root = self.root
        if root is None:
            return []
        found: set[int] = set()
        for span in root.walk():
            pid = span.attributes.get("pid")
            if isinstance(pid, int):
                found.add(pid)
        return sorted(found)

    def to_dict(self) -> dict:
        """The ``GET /jobs/<id>/trace`` payload: the assembled tree."""
        with self._lock:
            root = self.root
            complete = self._published
        counter = itertools.count(1)

        def render(span: Span, parent_id: int | None) -> dict:
            span_id = (
                span.span_id if span.span_id else next(counter) + 1_000_000
            )
            return {
                "id": span_id,
                "parent": parent_id,
                "name": span.name,
                "start": span.start_wall,
                "end": span.end_wall,
                "wall_seconds": span.wall_seconds,
                "sim_seconds": span.sim_seconds,
                "thread": span.thread,
                "attributes": dict(span.attributes),
                "children": [
                    render(child, span_id) for child in span.children
                ],
            }

        return {
            "trace_id": self.trace_id,
            "traceparent": self.traceparent,
            "complete": complete,
            "pids": self.pids(),
            "spans": (
                sum(1 for _ in root.walk()) if root is not None else 0
            ),
            "root": render(root, None) if root is not None else None,
        }
