"""Tracing core: nestable spans, span trees, injectable clocks.

A :class:`TraceCollector` records a forest of :class:`Span` trees.  Each
span carries a *wall* duration (from an injectable clock, so tests can
drive time deterministically) and an accumulated *simulated* duration —
the analytic seconds produced by :mod:`repro.llm.timing` — so a trace
shows both where the harness spends real time and where the modelled
deployment would spend LLM time.

Instrumentation sites use the module-level :func:`span` context manager
(or the :func:`traced` decorator), which is a cheap no-op while no
collector is installed: the hot paths stay default-on without taxing
uninstrumented runs.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Span",
    "SpanStats",
    "TraceCollector",
    "get_collector",
    "install",
    "span",
    "traced",
    "uninstall",
]


class Span:
    """One timed operation; nests into a tree via ``children``."""

    __slots__ = (
        "span_id", "parent_id", "name", "attributes",
        "start_wall", "end_wall", "sim_seconds", "children", "thread",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        attributes: dict[str, object],
        start_wall: float,
        thread: str = "",
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.start_wall = start_wall
        self.end_wall: float | None = None
        self.sim_seconds = 0.0
        self.children: list["Span"] = []
        self.thread = thread

    # ------------------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def add_sim_time(self, seconds: float) -> None:
        """Accumulate simulated (analytic-clock) seconds on this span."""
        self.sim_seconds += seconds

    def walk(self):
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, wall={self.wall_seconds:.6f}, "
            f"sim={self.sim_seconds:.3f}, children={len(self.children)})"
        )


class _NoopSpan:
    """Returned by :func:`span` when no collector is installed."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        return None

    def add_sim_time(self, seconds: float) -> None:
        return None


NOOP_SPAN = _NoopSpan()


@dataclass
class SpanStats:
    """Aggregate over all spans sharing one name."""

    name: str
    count: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0


class TraceCollector:
    """Collects span trees; one span stack per thread.

    ``wall_clock`` is any zero-argument callable returning monotonically
    increasing seconds; it defaults to :func:`time.perf_counter` and is
    injectable so tests (and the simulated-latency pathway) can produce
    bit-identical traces.
    """

    def __init__(
        self,
        wall_clock=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.wall_clock = wall_clock or time.perf_counter
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def start_span(
        self, name: str, attributes: dict[str, object] | None = None
    ) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        new = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            name=name,
            attributes=dict(attributes or {}),
            start_wall=self.wall_clock(),
            thread=threading.current_thread().name,
        )
        if parent is not None:
            # list.append is atomic under the GIL, so children from
            # several threads attached to one propagated parent are safe
            parent.children.append(new)
        else:
            with self._lock:
                self.roots.append(new)
        stack.append(new)
        return new

    def end_span(self, target: Span) -> None:
        target.end_wall = self.wall_clock()
        stack = self._stack()
        # normal case: ``target`` is the innermost open span; on
        # exception paths unwind anything opened (and leaked) inside it
        while stack:
            top = stack.pop()
            if top is target:
                return

    # ------------------------------------------------------------------
    # cross-thread propagation hooks (see :mod:`repro.obs.propagate`)
    # ------------------------------------------------------------------
    def adopt_span(self, target: Span) -> None:
        """Push a span owned by *another* thread onto this thread's stack.

        Spans started on this thread afterwards become children of
        ``target``; the adopted span itself is never finished here —
        :meth:`release_span` merely removes it again.
        """
        self._stack().append(target)

    def release_span(self, target: Span) -> None:
        """Undo :meth:`adopt_span`, unwinding any spans leaked inside."""
        stack = self._stack()
        while stack:
            if stack.pop() is target:
                return

    # ------------------------------------------------------------------
    # assembled-tree hooks (see :mod:`repro.obs.distributed`)
    # ------------------------------------------------------------------
    def next_span_id(self) -> int:
        """Allocate one span id from the collector's counter.

        Externally-assembled trees (fleet traces stitched together from
        several processes) draw their ids here so :func:`~repro.obs
        .export.parse_jsonl` — which links parents through a global id
        table — never sees a collision with live spans.
        """
        return next(self._ids)

    def add_root(self, root: Span) -> None:
        """Publish an externally-built span tree as a new trace root.

        The tree's ids must come from :meth:`next_span_id`; the spans are
        never pushed on any thread stack, so publishing cannot disturb
        in-flight instrumentation.
        """
        with self._lock:
            self.roots.append(root)

    # ------------------------------------------------------------------
    def iter_spans(self):
        """Every recorded span, depth-first across all roots."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    def aggregate(self) -> dict[str, SpanStats]:
        """Per-name totals (count, wall seconds, simulated seconds)."""
        stats: dict[str, SpanStats] = {}
        for item in self.iter_spans():
            entry = stats.get(item.name)
            if entry is None:
                entry = stats[item.name] = SpanStats(name=item.name)
            entry.count += 1
            entry.wall_seconds += item.wall_seconds
            entry.sim_seconds += item.sim_seconds
        return stats


# ----------------------------------------------------------------------
# global collector management
# ----------------------------------------------------------------------
_active: TraceCollector | None = None
_install_lock = threading.Lock()


def install(collector: TraceCollector | None = None) -> TraceCollector:
    """Install (and return) the process-wide collector."""
    global _active
    with _install_lock:
        _active = collector if collector is not None else TraceCollector()
        return _active


def uninstall() -> None:
    """Remove the active collector; instrumentation reverts to no-ops."""
    global _active
    with _install_lock:
        _active = None


def get_collector() -> TraceCollector | None:
    return _active


class span:
    """Context manager opening a span on the installed collector.

    With no collector installed, entering costs one global read and
    yields a shared no-op span — safe to leave on hot paths.
    """

    __slots__ = ("_name", "_attributes", "_span", "_collector")

    def __init__(self, _name: str, **attributes: object) -> None:
        self._name = _name
        self._attributes = attributes
        self._span: Span | None = None
        self._collector: TraceCollector | None = None

    def __enter__(self):
        collector = _active
        if collector is None:
            return NOOP_SPAN
        self._collector = collector
        self._span = collector.start_span(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None:
            if exc_type is not None:
                self._span.attributes.setdefault("error", exc_type.__name__)
            self._collector.end_span(self._span)
            self._span = None
            self._collector = None
        return False


def traced(name: str | None = None, **attributes: object):
    """Decorator tracing every call of the wrapped function."""

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _active is None:
                return fn(*args, **kwargs)
            with span(label, **attributes):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
