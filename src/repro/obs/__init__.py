"""repro.obs — tracing, metrics and profiling for the mining stack.

Usage from instrumentation sites::

    from repro import obs

    with obs.span("llm.call", model=name) as sp:
        ...
        sp.set_attribute("prompt_tokens", tokens)
        sp.add_sim_time(latency)
    obs.inc("llm.calls", 1, model=name)

All helpers are no-ops until a collector is installed with
:func:`obs.install` (the CLI's ``--obs``/``--trace-out`` flags do this),
so instrumentation can stay default-on in every hot path.
"""

from __future__ import annotations

from repro.obs.analyze import (
    ATTRIBUTION_MODES,
    CostRow,
    NameStats,
    aggregate_names,
    attribute_costs,
    chrome_trace,
    critical_path,
    flamegraph_folded,
    load_trace,
    span_tokens,
)
from repro.obs.distributed import (
    TraceAssembler,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span_from_wire,
    span_to_wire,
)
from repro.obs.export import (
    ParsedSpan,
    ParsedTrace,
    parse_jsonl,
    prometheus_text,
    render_rows,
    summary_table,
    to_jsonl,
    write_jsonl,
)
from repro.obs.propagate import EMPTY_CONTEXT, TraceContext, capture, wrap
from repro.obs.server import JsonRequestHandler, TelemetryServer
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    SpanStats,
    TraceCollector,
    get_collector,
    install,
    span,
    traced,
    uninstall,
)

__all__ = [
    "ATTRIBUTION_MODES",
    "CostRow",
    "Counter",
    "DEFAULT_BUCKETS",
    "EMPTY_CONTEXT",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "JsonRequestHandler",
    "MetricsRegistry",
    "NameStats",
    "ParsedSpan",
    "ParsedTrace",
    "Span",
    "SpanStats",
    "TelemetryServer",
    "TraceAssembler",
    "TraceCollector",
    "TraceContext",
    "aggregate_names",
    "attribute_costs",
    "capture",
    "chrome_trace",
    "critical_path",
    "flamegraph_folded",
    "format_traceparent",
    "get_collector",
    "inc",
    "install",
    "load_trace",
    "new_span_id",
    "new_trace_id",
    "observe",
    "parse_jsonl",
    "parse_traceparent",
    "prometheus_text",
    "render_rows",
    "set_gauge",
    "span",
    "span_from_wire",
    "span_to_wire",
    "span_tokens",
    "summary_table",
    "to_jsonl",
    "traced",
    "uninstall",
    "wrap",
    "write_jsonl",
]


def inc(name: str, amount: float = 1, **labels: object) -> None:
    """Increment a counter on the installed collector (no-op if none)."""
    collector = get_collector()
    if collector is not None:
        collector.metrics.counter(name).inc(amount, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge on the installed collector (no-op if none)."""
    collector = get_collector()
    if collector is not None:
        collector.metrics.gauge(name).set(value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    """Record a histogram observation (no-op if none installed)."""
    collector = get_collector()
    if collector is not None:
        collector.metrics.histogram(name).observe(value, **labels)
