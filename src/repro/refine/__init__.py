"""Iterative rule refinement: closing the analyzer → correction loop.

The paper's §4.4 protocol repairs broken generated Cypher *by hand*;
:mod:`repro.analysis` (PR 3) proves mechanically *why* a rule is broken
but used to just score it zero.  This package closes the loop, in the
spirit of the Multi-Agent GraphRAG text-to-Cypher framework (PAPERS.md):

generate → lint → analyze → **apply-fix-or-regenerate-with-hint** →
execute → critique, bounded by a retry budget.

Two repair strategies, tried in order of cost:

1. **mechanical fix** — :class:`repro.analysis.fixes.FixSynthesizer`
   turns findings into provably-safe AST rewrites (free: no LLM call);
2. **regeneration with feedback** — finding text goes back into the
   simulated LLM as a ``### Feedback`` section, first to re-translate
   the same rule, then (when the *rule* itself is implicated, e.g. a
   hallucinated property) to revise the rule sentence through the
   correction skill.

The loop is off by default (``refine_budget=0`` everywhere) so the
paper-grid runs are bit-identical; ``repro-experiments refine`` measures
recovered-rule yield per retry budget on stress profiles.
"""

from repro.refine.loop import RefineAttempt, RefineLoop, RefineResult

__all__ = ["RefineAttempt", "RefineLoop", "RefineResult"]
