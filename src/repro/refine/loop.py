"""The bounded generate → lint → analyze → fix/regenerate → execute →
critique loop."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.analysis.findings import AnalysisReport
from repro.analysis.fixes import FixCandidate, FixSynthesizer
from repro.correction.corrector import CorrectionOutcome, QueryCorrector
from repro.metrics.definitions import RuleMetrics
from repro.metrics.evaluator import evaluate_rule
from repro.prompts.templates import correction_prompt, cypher_prompt
from repro.rules.model import ConsistencyRule
from repro.rules.nl import parse_rule_list

#: WARN-level defect codes worth repairing even though they do not doom
#: execution — they silently null the comparison at runtime
TARGET_CODES = frozenset({
    "type-confused-comparison",
    "type-confused-in-list",
    "comparison-with-null",
    "use-before-bind",
})


@dataclass(frozen=True)
class _Diagnosis:
    """One full critique of a (rule, outcome) pair."""

    healthy: bool
    feedback: tuple[str, ...]
    rule_level: bool            # the rule sentence itself is implicated
    analysis: Optional[AnalysisReport]
    metrics: Optional[RuleMetrics]
    triage_skipped: bool


@dataclass(frozen=True)
class RefineAttempt:
    """One round of the loop, for provenance and reports."""

    round: int
    strategy: str               # 'fix' | 'regenerate'
    detail: str
    healthy: bool


@dataclass
class RefineResult:
    """What the loop settled on for one broken rule."""

    rule: ConsistencyRule
    outcome: CorrectionOutcome
    recovered: bool
    attempts: list[RefineAttempt] = field(default_factory=list)
    analysis: Optional[AnalysisReport] = None
    metrics: Optional[RuleMetrics] = None
    triage_skipped: bool = False
    fix: Optional[FixCandidate] = None
    llm_calls: int = 0

    def to_dict(self) -> dict:
        return {
            "recovered": self.recovered,
            "llm_calls": self.llm_calls,
            "attempts": [
                {
                    "round": attempt.round,
                    "strategy": attempt.strategy,
                    "detail": attempt.detail,
                    "healthy": attempt.healthy,
                }
                for attempt in self.attempts
            ],
            "fix": self.fix.to_dict() if self.fix else None,
        }


class RefineLoop:
    """Repairs one broken rule within a bounded retry budget.

    A *mechanical* fix (AST rewrite, re-verified by the analyzer) is
    always tried first because it costs no LLM call; only then does the
    loop spend its ``budget`` on regeneration — the analyzer findings go
    back into the prompt as a ``### Feedback`` section, and when the
    rule sentence itself is implicated (hallucinated property,
    untranslatable, provably-empty constraint) the rule is first revised
    through the simulated LLM's correction skill.
    """

    def __init__(
        self,
        corrector: QueryCorrector,
        schema_summary: str,
        llm,
        graph=None,
        budget: int = 2,
    ) -> None:
        self.corrector = corrector
        self.analyzer = corrector.analyzer
        self.schema_summary = schema_summary
        self.llm = llm
        self.graph = graph
        self.budget = budget
        self.fixer = FixSynthesizer(
            schema=corrector.schema, analyzer=corrector.analyzer
        )

    # ------------------------------------------------------------------
    def refine(
        self, rule: ConsistencyRule, outcome: CorrectionOutcome
    ) -> RefineResult:
        """Run the loop; on exhaustion the original pair is returned."""
        obs.inc("refine.attempts")
        diagnosis = self._diagnose(outcome)
        if diagnosis.healthy:
            return self._result(rule, outcome, diagnosis, True, [], None, 0)

        attempts: list[RefineAttempt] = []
        calls = 0
        fix: Optional[FixCandidate] = None

        # strategy 1: mechanical fix — free, so it never costs budget
        candidate = self.fixer.repair(
            outcome.final_query, target_codes=TARGET_CODES
        )
        self._drain_fix_counters()
        if candidate is not None:
            patched = dataclasses.replace(
                outcome, final_query=candidate.fixed, corrected=True,
            )
            patched_diagnosis = self._diagnose(patched)
            attempts.append(RefineAttempt(
                round=0, strategy="fix", detail=candidate.description,
                healthy=patched_diagnosis.healthy,
            ))
            obs.inc("refine.fix_applied")
            if patched_diagnosis.healthy:
                obs.inc("refine.recovered", strategy="fix")
                return self._result(
                    rule, patched, patched_diagnosis, True, attempts,
                    candidate, calls,
                )
            outcome, diagnosis, fix = patched, patched_diagnosis, candidate

        # strategy 2: regeneration with targeted hints
        current_rule, current_diagnosis = rule, diagnosis
        for round_no in range(1, self.budget + 1):
            feedback = "\n".join(
                current_diagnosis.feedback + (f"(attempt {round_no})",)
            )
            candidate_rule = current_rule
            if current_diagnosis.rule_level:
                completion = self.llm.complete(correction_prompt(
                    current_rule.text, self.schema_summary, feedback,
                ))
                calls += 1
                revised, _unparsed = parse_rule_list(
                    completion.text, provenance="refine"
                )
                if revised:
                    candidate_rule = revised[0]
            completion = self.llm.complete(cypher_prompt(
                candidate_rule.text, self.schema_summary, feedback=feedback,
            ))
            calls += 1
            new_outcome = self.corrector.correct(
                candidate_rule, completion.text
            )
            new_diagnosis = self._diagnose(new_outcome)
            obs.inc("refine.regenerated")
            attempts.append(RefineAttempt(
                round=round_no, strategy="regenerate",
                detail=candidate_rule.text, healthy=new_diagnosis.healthy,
            ))
            if new_diagnosis.healthy:
                obs.inc("refine.recovered", strategy="regenerate")
                return self._result(
                    candidate_rule, new_outcome, new_diagnosis, True,
                    attempts, fix, calls,
                )
            current_rule, current_diagnosis = candidate_rule, new_diagnosis

        obs.inc("refine.exhausted")
        return self._result(
            rule, outcome, diagnosis, False, attempts, fix, calls
        )

    # ------------------------------------------------------------------
    # the critique step
    # ------------------------------------------------------------------
    def _diagnose(self, outcome: CorrectionOutcome) -> _Diagnosis:
        feedback: list[str] = []
        rule_level = False

        if outcome.metric_queries is None:
            feedback.append(
                "- the rule could not be translated into Cypher; restate "
                "it as one simple canonical constraint"
            )
            rule_level = True

        analysis = self.analyzer.analyze(outcome.final_query)
        if analysis.verdict.dooms_execution or (
            TARGET_CODES & analysis.codes()
        ):
            for finding in analysis.findings:
                if (
                    finding.severity.dooms_execution
                    or finding.code in TARGET_CODES
                ):
                    feedback.append(
                        f"- {finding.code}: {finding.message}"
                    )

        triage_skipped = False
        metrics: Optional[RuleMetrics] = None
        if outcome.metric_queries is not None:
            triage = self.analyzer.triage(outcome.metric_queries.satisfy)
            if not triage.should_evaluate:
                triage_skipped = True
                rule_level = True
                feedback.append(
                    "- the rule's own satisfy query is statically "
                    f"{triage.verdict.value}: it can never match"
                )
                feedback.extend(self._lint_feedback(outcome))
            elif self.graph is not None:
                metrics = evaluate_rule(self.graph, outcome.metric_queries)
                if metrics.support == 0:
                    rule_level = True
                    feedback.append(
                        "- the satisfy query returned support 0 on the "
                        "graph; the rule matches nothing"
                    )
                    feedback.extend(self._lint_feedback(outcome))

        return _Diagnosis(
            healthy=not feedback,
            feedback=tuple(dict.fromkeys(feedback)),
            rule_level=rule_level,
            analysis=analysis,
            metrics=metrics,
            triage_skipped=triage_skipped,
        )

    def _lint_feedback(self, outcome: CorrectionOutcome) -> list[str]:
        """Lint the rule's satisfy query: its messages name hallucinated
        properties in the exact phrasing the correction skill parses."""
        classification = self.corrector.classifier.classify(
            outcome.metric_queries.satisfy
        )
        return [
            f"- {issue.message}"
            for issue in classification.report.issues
        ]

    # ------------------------------------------------------------------
    def _drain_fix_counters(self) -> None:
        for (event, kind), count in self.fixer.drain_counters().items():
            obs.inc(f"analysis.fix.{event}", count, kind=kind)

    def _result(
        self,
        rule: ConsistencyRule,
        outcome: CorrectionOutcome,
        diagnosis: _Diagnosis,
        recovered: bool,
        attempts: list[RefineAttempt],
        fix: Optional[FixCandidate],
        calls: int,
    ) -> RefineResult:
        return RefineResult(
            rule=rule,
            outcome=outcome,
            recovered=recovered,
            attempts=attempts,
            analysis=diagnosis.analysis,
            metrics=diagnosis.metrics,
            triage_skipped=diagnosis.triage_skipped,
            fix=fix,
            llm_calls=calls,
        )
