"""Persistence for mining runs: JSON round-trip of the full grid.

An experiment grid takes minutes on the large graphs; archiving the
:class:`~repro.mining.result.MiningRun` records lets results be compared
across seeds, parameter sweeps and code versions without re-mining.

Fidelity note: the serialised record captures everything the tables need
(rules, final queries, classification, metrics, timings).  The verbose
internals that can be regenerated (lint issue lists, metric query
bundles) are reduced to their reportable form.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis import AnalysisReport
from repro.correction.corrector import CorrectionOutcome
from repro.cypher.linter import ErrorCategory, LintIssue, LintReport
from repro.correction.classifier import Classification
from repro.metrics.definitions import RuleMetrics
from repro.mining.result import MiningRun, RuleResult
from repro.rules.model import ConsistencyRule
from repro.rules.translator import MetricQueries

FORMAT_VERSION = 1


class UnsupportedFormatError(ValueError):
    """The payload's format version cannot be read by this library."""


def check_format_version(payload: dict[str, Any], what: str = "payload") -> int:
    """Validate a payload's ``format_version`` before deserializing.

    Rejecting up front — with a message that says whether the archive is
    from a *newer* library (upgrade) or simply unknown — beats the
    obscure ``KeyError`` deep inside field-by-field reconstruction that
    a silently-attempted load would produce.
    """
    version = payload.get("format_version", FORMAT_VERSION)
    if not isinstance(version, int):
        raise UnsupportedFormatError(
            f"{what} has a non-integer format_version: {version!r}"
        )
    if version > FORMAT_VERSION:
        raise UnsupportedFormatError(
            f"{what} uses format version {version}, but this library "
            f"only reads up to {FORMAT_VERSION}; upgrade repro to load it"
        )
    if version != FORMAT_VERSION:
        raise UnsupportedFormatError(
            f"{what} uses unsupported format version {version} "
            f"(expected {FORMAT_VERSION})"
        )
    return version


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
def rule_to_dict(rule: ConsistencyRule) -> dict[str, Any]:
    return rule.to_dict()


def rule_from_dict(payload: dict[str, Any]) -> ConsistencyRule:
    return ConsistencyRule.from_dict(payload)


# ----------------------------------------------------------------------
# runs
# ----------------------------------------------------------------------
def run_to_dict(run: MiningRun) -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "dataset": run.dataset,
        "model": run.model,
        "method": run.method,
        "prompt_mode": run.prompt_mode,
        "mining_seconds": run.mining_seconds,
        "cypher_seconds": run.cypher_seconds,
        "window_count": run.window_count,
        "broken_statements": run.broken_statements,
        "broken_patterns": run.broken_patterns,
        "retrieved_chunks": run.retrieved_chunks,
        "total_chunks": run.total_chunks,
        "results": [
            {
                "rule": rule_to_dict(result.rule),
                "generated_query": result.outcome.generated_query,
                "final_query": result.outcome.final_query,
                "is_correct": result.outcome.classification.is_correct,
                "error_category":
                    result.outcome.classification.category_name,
                "issues": [
                    {"category": issue.category.value,
                     "message": issue.message}
                    for issue in
                    result.outcome.classification.report.issues
                ],
                "corrected": result.outcome.corrected,
                "left_uncorrected": result.outcome.left_uncorrected,
                "metric_queries": (
                    {
                        "check": result.outcome.metric_queries.check,
                        "relevant":
                            result.outcome.metric_queries.relevant,
                        "body": result.outcome.metric_queries.body,
                        "satisfy": result.outcome.metric_queries.satisfy,
                        "violations":
                            result.outcome.metric_queries.violations,
                    }
                    if result.outcome.metric_queries is not None else None
                ),
                "metrics": {
                    "support": result.metrics.support,
                    "relevant": result.metrics.relevant,
                    "body": result.metrics.body,
                },
                "analysis": (
                    result.analysis.to_dict()
                    if result.analysis is not None else None
                ),
                "triage_skipped": result.triage_skipped,
            }
            for result in run.results
        ],
    }


def run_from_dict(payload: dict[str, Any]) -> MiningRun:
    check_format_version(payload, what="run record")
    run = MiningRun(
        dataset=payload["dataset"],
        model=payload["model"],
        method=payload["method"],
        prompt_mode=payload["prompt_mode"],
        mining_seconds=payload.get("mining_seconds", 0.0),
        cypher_seconds=payload.get("cypher_seconds", 0.0),
        window_count=payload.get("window_count", 0),
        broken_statements=payload.get("broken_statements", 0),
        broken_patterns=payload.get("broken_patterns", 0),
        retrieved_chunks=payload.get("retrieved_chunks", 0),
        total_chunks=payload.get("total_chunks", 0),
    )
    for record in payload.get("results", ()):
        rule = rule_from_dict(record["rule"])
        issues = [
            LintIssue(
                category=ErrorCategory(issue["category"]),
                message=issue["message"],
            )
            for issue in record.get("issues", ())
        ]
        report = LintReport(
            query_text=record["generated_query"], issues=issues
        )
        classification = Classification(
            query=record["generated_query"],
            is_correct=record["is_correct"],
            primary_category=(
                ErrorCategory(record["error_category"])
                if record.get("error_category") else None
            ),
            report=report,
        )
        queries_payload = record.get("metric_queries")
        metric_queries = (
            MetricQueries(
                check=queries_payload["check"],
                relevant=queries_payload["relevant"],
                body=queries_payload["body"],
                satisfy=queries_payload["satisfy"],
                violations=queries_payload.get("violations"),
            )
            if queries_payload else None
        )
        outcome = CorrectionOutcome(
            rule=rule,
            generated_query=record["generated_query"],
            final_query=record["final_query"],
            classification=classification,
            corrected=record.get("corrected", False),
            left_uncorrected=record.get("left_uncorrected", False),
            metric_queries=metric_queries,
        )
        metrics = RuleMetrics(
            support=record["metrics"]["support"],
            relevant=record["metrics"]["relevant"],
            body=record["metrics"]["body"],
        )
        analysis_payload = record.get("analysis")
        analysis = (
            AnalysisReport.from_dict(record["final_query"], analysis_payload)
            if analysis_payload is not None else None
        )
        run.results.append(RuleResult(
            rule=rule, outcome=outcome, metrics=metrics,
            analysis=analysis,
            triage_skipped=record.get("triage_skipped", False),
        ))
    return run


def save_runs(runs: list[MiningRun], path: str | Path) -> None:
    """Archive a list of runs to a JSON file."""
    payload = {
        "format_version": FORMAT_VERSION,
        "runs": [run_to_dict(run) for run in runs],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_runs(path: str | Path) -> list[MiningRun]:
    """Load runs archived with :func:`save_runs`."""
    with open(path) as handle:
        payload = json.load(handle)
    check_format_version(payload, what=f"archive {path}")
    return [run_from_dict(record) for record in payload.get("runs", ())]
