"""Retrieval Augmented Generation pipeline (Figure 2b).

The encoded statements are chunked, embedded and stored in the vector
store; the rule-mining request itself is the retrieval query; the LLM is
prompted once over the retrieved chunks.  Mining time is near-constant
(one call over a small context), but the model only ever sees the
retrieved fraction of the graph — the paper's explanation for RAG's
weaker rules (§4.5).
"""

from __future__ import annotations

from repro import obs
from repro.mining.pipeline import BasePipeline, PipelineContext, combine_and_cap
from repro.mining.result import MiningRun
from repro.prompts.examples import examples_text
from repro.prompts.templates import few_shot_prompt, zero_shot_prompt
from repro.rag.retriever import DEFAULT_CHUNK_TOKENS, DEFAULT_TOP_K, GraphRetriever

#: the retrieval query is the task itself, as in the paper's first phase
RETRIEVAL_QUERY = (
    "consistency rules property graph functional dependency entity "
    "dependency required unique property label relationship"
)


class RAGPipeline(BasePipeline):
    """Chunk → embed → retrieve → single prompt → Cypher → metrics."""

    method = "rag"

    def __init__(
        self,
        context: PipelineContext,
        chunk_tokens: int = DEFAULT_CHUNK_TOKENS,
        top_k: int = DEFAULT_TOP_K,
        base_seed: int = 0,
        refine_budget: int = 0,
    ) -> None:
        super().__init__(
            context, base_seed=base_seed, refine_budget=refine_budget
        )
        self.retriever = GraphRetriever(
            chunk_tokens=chunk_tokens, top_k=top_k
        )
        self._indexed = False

    def _ensure_index(self) -> None:
        if not self._indexed:
            self.retriever.index_statements(self.context.statements)
            self._indexed = True

    def warm(self) -> None:
        """Chunk + embed + index now instead of on the first ``mine()``."""
        self._ensure_index()

    # ------------------------------------------------------------------
    def mine(self, model: str, prompt_mode: str) -> MiningRun:
        llm, clock = self.make_llm(model, prompt_mode)
        with obs.span(
            "mine.rag",
            dataset=self.context.name, model=llm.name,
            prompt_mode=prompt_mode,
        ) as mine_span:
            self._ensure_index()
            retrieval = self.retriever.retrieve(RETRIEVAL_QUERY)

            run = MiningRun(
                dataset=self.context.name,
                model=llm.name,
                method=self.method,
                prompt_mode=prompt_mode,
                retrieved_chunks=len(retrieval.hits),
                total_chunks=retrieval.chunk_count,
            )

            if prompt_mode == "few_shot":
                prompt = few_shot_prompt(retrieval.context, examples_text())
            else:
                prompt = zero_shot_prompt(retrieval.context)
            completion = llm.complete(prompt)
            run.mining_seconds = clock.elapsed_seconds

            rules = self.parse_completion(
                completion.text, provenance=f"{llm.name}/rag"
            )
            combined = combine_and_cap(
                [rules], llm.profile, prompt_mode,
                self.run_rng(llm.name, prompt_mode),
            )
            self.translate_and_score(
                run, self.semantic_dedup(combined.rules), llm
            )
            mine_span.set_attribute("rules", run.rule_count)
            mine_span.set_attribute("retrieved_chunks", len(retrieval.hits))
            mine_span.add_sim_time(clock.elapsed_seconds)
        return run
