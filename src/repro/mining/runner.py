"""Full experiment grid: datasets × models × encodings × prompts.

One :class:`ExperimentRunner` owns the per-dataset contexts and pipeline
instances (so encodings, window sets and vector indexes are built once)
and produces the 24 :class:`~repro.mining.result.MiningRun` cells that
Tables 2-6 are assembled from.  Runs are cached by cell key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.datasets.registry import DATASET_NAMES, load
from repro.llm.profiles import MODEL_NAMES
from repro.mining.pipeline import PROMPT_MODES, PipelineContext
from repro.mining.ragpipe import RAGPipeline
from repro.mining.result import MiningRun
from repro.mining.sliding import SlidingWindowPipeline

METHODS = ("sliding_window", "rag")


@dataclass
class ExperimentRunner:
    """Runs and caches the paper's experiment grid."""

    base_seed: int = 0
    window_size: int = 8000
    overlap: int = 500
    rag_chunk_tokens: int = 512
    rag_top_k: int = 16
    _contexts: dict[str, PipelineContext] = field(default_factory=dict)
    _pipelines: dict[tuple[str, str], object] = field(default_factory=dict)
    _runs: dict[tuple[str, str, str, str], MiningRun] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    def context(self, dataset: str) -> PipelineContext:
        key = dataset.lower()
        if key not in self._contexts:
            self._contexts[key] = PipelineContext.build(load(key))
        return self._contexts[key]

    def pipeline(self, dataset: str, method: str):
        key = (dataset.lower(), method)
        if key not in self._pipelines:
            context = self.context(dataset)
            if method == "sliding_window":
                self._pipelines[key] = SlidingWindowPipeline(
                    context, window_size=self.window_size,
                    overlap=self.overlap, base_seed=self.base_seed,
                )
            elif method == "rag":
                self._pipelines[key] = RAGPipeline(
                    context, chunk_tokens=self.rag_chunk_tokens,
                    top_k=self.rag_top_k, base_seed=self.base_seed,
                )
            else:
                raise ValueError(f"unknown method {method!r}")
        return self._pipelines[key]

    # ------------------------------------------------------------------
    def run(
        self, dataset: str, model: str, method: str, prompt_mode: str
    ) -> MiningRun:
        """Run (or fetch) one grid cell."""
        key = (dataset.lower(), model.lower(), method, prompt_mode)
        if key not in self._runs:
            pipeline = self.pipeline(dataset, method)
            with obs.span(
                "grid.cell",
                dataset=key[0], model=key[1], method=method,
                prompt_mode=prompt_mode,
            ):
                self._runs[key] = pipeline.mine(model, prompt_mode)
            obs.inc("grid.cells_run")
        return self._runs[key]

    def run_dataset(self, dataset: str) -> list[MiningRun]:
        """All eight cells for one dataset (Tables 2/3/4 layout)."""
        runs = []
        for prompt_mode in PROMPT_MODES:
            for method in METHODS:
                for model in MODEL_NAMES:
                    runs.append(self.run(dataset, model, method, prompt_mode))
        return runs

    def run_all(self) -> list[MiningRun]:
        """The full 24-cell grid across all three datasets."""
        runs = []
        for dataset in DATASET_NAMES:
            runs.extend(self.run_dataset(dataset))
        return runs
