"""Graph-summarization mining (§5's second future-work direction).

Instead of feeding the LLM the raw encoded graph (windows) or retrieved
chunks (RAG), this pipeline prompts once over a *summary*: a compact,
statistically faithful digest built from the full graph — per-label
counts and property profiles plus a stratified sample of concrete
statements per label and edge type.

The summary keeps induction honest (the LLM still only sees the prompt)
while giving it global coverage at RAG-like cost: one call, a few
thousand tokens.
"""

from __future__ import annotations

import random

from repro.encoding.incident import IncidentEncoder, Statement
from repro.mining.pipeline import (
    BasePipeline,
    PipelineContext,
    combine_and_cap,
)
from repro.mining.result import MiningRun
from repro.prompts.examples import examples_text
from repro.prompts.templates import few_shot_prompt, zero_shot_prompt

#: concrete examples included per node label / edge type
DEFAULT_SAMPLES_PER_LABEL = 12


def build_summary_statements(
    context: PipelineContext,
    samples_per_label: int = DEFAULT_SAMPLES_PER_LABEL,
    seed: int = 0,
) -> list[Statement]:
    """A stratified sample of incident statements covering every label.

    Sampling is seeded and per-label, so small labels are fully covered
    and large labels contribute a representative handful — unlike RAG's
    similarity-driven retrieval, nothing is systematically missed.
    """
    rng = random.Random(seed)
    encoder = IncidentEncoder()
    graph = context.graph
    statements: list[Statement] = []

    for label in graph.node_labels():
        nodes = list(graph.nodes(label=label))
        if len(nodes) > samples_per_label:
            nodes = rng.sample(nodes, samples_per_label)
        for node in nodes:
            statements.append(encoder.encode_node(node))
            # include the node's outgoing edges so endpoint/structure
            # rules remain inducible, capped to keep the prompt small
            for edge in list(graph.out_edges(node.id))[:4]:
                statements.append(encoder.encode_edge(graph, edge))

    for edge_label in graph.edge_labels():
        edges = list(graph.edges(label=edge_label))
        if len(edges) > samples_per_label:
            edges = rng.sample(edges, samples_per_label)
        for edge in edges:
            statements.append(encoder.encode_edge(graph, edge))
            for endpoint in (edge.src, edge.dst):
                statements.append(
                    encoder.encode_node(graph.node(endpoint))
                )
    return statements


class SummaryPipeline(BasePipeline):
    """One prompt over a stratified graph summary."""

    method = "summary"

    def __init__(
        self,
        context: PipelineContext,
        samples_per_label: int = DEFAULT_SAMPLES_PER_LABEL,
        base_seed: int = 0,
    ) -> None:
        super().__init__(context, base_seed=base_seed)
        self.samples_per_label = samples_per_label
        self._summary_text: str | None = None

    @property
    def summary_text(self) -> str:
        if self._summary_text is None:
            statements = build_summary_statements(
                self.context,
                samples_per_label=self.samples_per_label,
                seed=self.base_seed,
            )
            self._summary_text = "\n".join(s.text for s in statements)
        return self._summary_text

    # ------------------------------------------------------------------
    def mine(self, model: str, prompt_mode: str) -> MiningRun:
        llm, clock = self.make_llm(model, prompt_mode)
        run = MiningRun(
            dataset=self.context.name,
            model=llm.name,
            method=self.method,
            prompt_mode=prompt_mode,
        )
        if prompt_mode == "few_shot":
            prompt = few_shot_prompt(self.summary_text, examples_text())
        else:
            prompt = zero_shot_prompt(self.summary_text)
        completion = llm.complete(prompt)
        run.mining_seconds = clock.elapsed_seconds

        rules = self.parse_completion(
            completion.text, provenance=f"{llm.name}/summary"
        )
        combined = combine_and_cap(
            [rules], llm.profile, prompt_mode,
            self.run_rng(llm.name, prompt_mode),
        )
        self.translate_and_score(run, combined.rules, llm)
        return run
