"""Parallel sliding-window mining (§4.3's future-work proposal).

"Future research on efficient rule mining with LLMs should focus on
parallelizing the prompting process (e.g., distributing different parts
of the graph to multiple LLMs)."

This pipeline does exactly that: the windows are distributed round-robin
over ``workers`` simulated LLM replicas, each draining its share on a
real thread of its own.  Each replica accumulates its own simulated
clock; the mining wall time is the *makespan* (the slowest replica), so
the speedup over the sequential pipeline approaches the worker count for
large graphs.  Rule combination is unchanged — the per-window
completions are unioned exactly as in §3.1.1, in window order, so a
parallel run's rules are text-identical to the sequential run's.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro import obs
from repro.encoding.windows import (
    DEFAULT_OVERLAP,
    DEFAULT_WINDOW_SIZE,
    SlidingWindowChunker,
    WindowSet,
)
from repro.llm.base import SimulatedClock
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedLLM
from repro.mining.pipeline import (
    BasePipeline,
    PipelineContext,
    combine_and_cap,
    run_seed,
)
from repro.mining.result import MiningRun
from repro.prompts.examples import examples_text
from repro.prompts.templates import few_shot_prompt, zero_shot_prompt


@dataclass
class WorkerReport:
    """Per-replica accounting for one parallel run."""

    worker_id: int
    windows: int = 0
    seconds: float = 0.0
    clock: SimulatedClock = field(default_factory=SimulatedClock)


class ParallelSlidingWindowPipeline(BasePipeline):
    """Round-robin window distribution across N simulated LLM replicas."""

    method = "parallel_sliding_window"

    def __init__(
        self,
        context: PipelineContext,
        workers: int = 4,
        window_size: int = DEFAULT_WINDOW_SIZE,
        overlap: int = DEFAULT_OVERLAP,
        base_seed: int = 0,
        refine_budget: int = 0,
    ) -> None:
        super().__init__(
            context, base_seed=base_seed, refine_budget=refine_budget
        )
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.chunker = SlidingWindowChunker(
            window_size=window_size, overlap=overlap
        )
        self._window_set: WindowSet | None = None

    @property
    def window_set(self) -> WindowSet:
        if self._window_set is None:
            self._window_set = self.chunker.chunk_statements(
                self.context.statements
            )
        return self._window_set

    def warm(self) -> None:
        """Chunk the windows now instead of on the first ``mine()``."""
        self.window_set

    # ------------------------------------------------------------------
    def mine(self, model: str, prompt_mode: str) -> MiningRun:
        profile = get_profile(model)
        windows = self.window_set
        # one replica per worker; each replica is seeded like the
        # sequential pipeline so a window's completion is *identical* to
        # the sequential run's — parallelism must not change the rules
        replicas: list[SimulatedLLM] = []
        reports: list[WorkerReport] = []
        for worker_id in range(self.workers):
            clock = SimulatedClock()
            replica = SimulatedLLM(
                profile=profile,
                seed=run_seed(
                    self.context.name, profile.name, "sliding_window",
                    prompt_mode, base_seed=self.base_seed,
                ),
                clock=clock,
            )
            if self.llm_middleware is not None:
                replica = self.llm_middleware(replica)
            replicas.append(replica)
            reports.append(WorkerReport(worker_id=worker_id, clock=clock))

        run = MiningRun(
            dataset=self.context.name,
            model=profile.name,
            method=self.method,
            prompt_mode=prompt_mode,
            window_count=windows.window_count,
            broken_statements=windows.broken_statement_count,
            broken_patterns=windows.broken_pattern_count,
        )

        examples = examples_text() if prompt_mode == "few_shot" else None
        with obs.span(
            "mine.parallel_sliding_window",
            dataset=self.context.name, model=profile.name,
            prompt_mode=prompt_mode, workers=self.workers,
            windows=windows.window_count,
        ) as mine_span:
            # real worker threads, one per replica; each carries the
            # mine span's trace context across the thread hop so the
            # run still records a single connected span tree
            context = obs.capture()
            assignments: list[list[tuple[int, object]]] = [
                [] for _ in range(self.workers)
            ]
            for position, window in enumerate(windows.windows):
                assignments[window.index % self.workers].append(
                    (position, window)
                )
            per_window_rules: list[list] = [
                [] for _ in windows.windows
            ]
            errors: list[BaseException] = []

            def drain(worker: int) -> None:
                replica = replicas[worker]
                report = reports[worker]
                with context.attach():
                    try:
                        for position, window in assignments[worker]:
                            if examples is not None:
                                prompt = few_shot_prompt(
                                    window.text, examples
                                )
                            else:
                                prompt = zero_shot_prompt(window.text)
                            with obs.span(
                                "window",
                                index=window.index, worker=worker,
                            ) as sp:
                                completion = replica.complete(prompt)
                                report.windows += 1
                                rules = self.parse_completion(
                                    completion.text,
                                    provenance=(
                                        f"{profile.name}/worker-{worker}/"
                                        f"window-{window.index}"
                                    ),
                                )
                                sp.set_attribute("rules", len(rules))
                            per_window_rules[position] = rules
                    except BaseException as error:  # re-raised below
                        errors.append(error)

            threads = [
                threading.Thread(
                    target=drain, args=(worker,),
                    name=f"mine-parallel-{worker}", daemon=True,
                )
                for worker in range(self.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
            for report in reports:
                report.seconds = report.clock.elapsed_seconds
                # one summary span per replica: its share of the windows
                # and the simulated seconds its clock accumulated
                with obs.span(
                    "worker",
                    worker_id=report.worker_id, windows=report.windows,
                ) as sp:
                    sp.add_sim_time(report.seconds)

            # makespan: the run finishes when the slowest replica does
            run.mining_seconds = max(
                (report.seconds for report in reports), default=0.0
            )
            self.worker_reports = reports

            combined = combine_and_cap(
                per_window_rules, profile, prompt_mode,
                self.run_rng(profile.name, prompt_mode),
            )
            # the second (Cypher) step is small; run it on replica 0.
            # Same semantic dedup as the sequential pipeline — rule
            # selection must be identical either way.
            self.translate_and_score(
                run, self.semantic_dedup(combined.rules), replicas[0]
            )
            # translate_and_score credited replica 0's clock only; the
            # run's totals span every replica
            run.llm_calls = sum(r.clock.calls for r in replicas)
            run.prompt_tokens = sum(r.clock.prompt_tokens for r in replicas)
            run.completion_tokens = sum(
                r.clock.completion_tokens for r in replicas
            )
            mine_span.set_attribute("rules", run.rule_count)
            mine_span.add_sim_time(run.mining_seconds + run.cypher_seconds)
        return run

    def run_rng(self, model_name: str, prompt_mode: str):
        """Use the sequential pipeline's combination RNG so a parallel
        run selects exactly the same rules — parallelism is a pure
        latency optimisation, never a behaviour change."""
        import random

        return random.Random(
            run_seed(
                self.context.name, model_name, "sliding_window",
                prompt_mode, "combine", base_seed=self.base_seed,
            )
        )

    # ------------------------------------------------------------------
    def speedup_over_sequential(self, run: MiningRun) -> float:
        """Observed speedup = total work / makespan."""
        total = sum(report.seconds for report in self.worker_reports)
        return total / run.mining_seconds if run.mining_seconds else 0.0
