"""Mining pipelines: sliding-window, RAG, and the experiment runner."""

from repro.mining.pipeline import (
    FEW_SHOT,
    PROMPT_MODES,
    ZERO_SHOT,
    BasePipeline,
    PipelineContext,
    combine_and_cap,
    run_seed,
)
from repro.mining.parallel import ParallelSlidingWindowPipeline, WorkerReport
from repro.mining.persistence import (
    FORMAT_VERSION,
    UnsupportedFormatError,
    check_format_version,
    load_runs,
    rule_from_dict,
    rule_to_dict,
    run_from_dict,
    run_to_dict,
    save_runs,
)
from repro.mining.ragpipe import RAGPipeline, RETRIEVAL_QUERY
from repro.mining.result import MiningRun, RuleResult
from repro.mining.runner import METHODS, ExperimentRunner
from repro.mining.sliding import SlidingWindowPipeline
from repro.mining.summary import SummaryPipeline, build_summary_statements

__all__ = [
    "BasePipeline",
    "ExperimentRunner",
    "FEW_SHOT",
    "FORMAT_VERSION",
    "METHODS",
    "MiningRun",
    "PROMPT_MODES",
    "ParallelSlidingWindowPipeline",
    "PipelineContext",
    "RAGPipeline",
    "RETRIEVAL_QUERY",
    "RuleResult",
    "SlidingWindowPipeline",
    "SummaryPipeline",
    "UnsupportedFormatError",
    "WorkerReport",
    "ZERO_SHOT",
    "build_summary_statements",
    "check_format_version",
    "combine_and_cap",
    "load_runs",
    "rule_from_dict",
    "rule_to_dict",
    "run_from_dict",
    "run_to_dict",
    "run_seed",
    "save_runs",
]
