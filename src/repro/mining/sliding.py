"""Sliding Window Attention pipeline (Figure 2a).

The encoded graph is divided into 8,000-token windows with 500 tokens of
overlap; the LLM is prompted once per window; per-window rules are
combined into the final set.  Mining time therefore grows with the
number of windows — the Table 5 mechanism.
"""

from __future__ import annotations

from repro import obs
from repro.encoding.windows import (
    DEFAULT_OVERLAP,
    DEFAULT_WINDOW_SIZE,
    SlidingWindowChunker,
    WindowSet,
)
from repro.mining.pipeline import BasePipeline, PipelineContext, combine_and_cap
from repro.mining.result import MiningRun
from repro.prompts.examples import examples_text
from repro.prompts.templates import few_shot_prompt, zero_shot_prompt


class SlidingWindowPipeline(BasePipeline):
    """Window → prompt-per-window → combine → Cypher → metrics."""

    method = "sliding_window"

    def __init__(
        self,
        context: PipelineContext,
        window_size: int = DEFAULT_WINDOW_SIZE,
        overlap: int = DEFAULT_OVERLAP,
        base_seed: int = 0,
        refine_budget: int = 0,
    ) -> None:
        super().__init__(
            context, base_seed=base_seed, refine_budget=refine_budget
        )
        self.chunker = SlidingWindowChunker(
            window_size=window_size, overlap=overlap
        )
        self._window_set: WindowSet | None = None

    @property
    def window_set(self) -> WindowSet:
        """Windows over this context's encoding (chunked lazily, once)."""
        if self._window_set is None:
            self._window_set = self.chunker.chunk_statements(
                self.context.statements
            )
        return self._window_set

    def warm(self) -> None:
        """Chunk the windows now instead of on the first ``mine()``."""
        self.window_set

    # ------------------------------------------------------------------
    def mine(self, model: str, prompt_mode: str) -> MiningRun:
        llm, clock = self.make_llm(model, prompt_mode)
        windows = self.window_set
        with obs.span(
            "mine.sliding_window",
            dataset=self.context.name, model=llm.name,
            prompt_mode=prompt_mode, windows=windows.window_count,
        ) as mine_span:
            run = MiningRun(
                dataset=self.context.name,
                model=llm.name,
                method=self.method,
                prompt_mode=prompt_mode,
                window_count=windows.window_count,
                broken_statements=windows.broken_statement_count,
                broken_patterns=windows.broken_pattern_count,
            )

            examples = examples_text() if prompt_mode == "few_shot" else None
            per_window_rules = []
            for window in windows.windows:
                if examples is not None:
                    prompt = few_shot_prompt(window.text, examples)
                else:
                    prompt = zero_shot_prompt(window.text)
                with obs.span("window", index=window.index) as sp:
                    completion = llm.complete(prompt)
                    rules = self.parse_completion(
                        completion.text,
                        provenance=f"{llm.name}/window-{window.index}",
                    )
                    sp.set_attribute("rules", len(rules))
                per_window_rules.append(rules)
                obs.inc("mining.windows_prompted", model=llm.name)
            run.mining_seconds = clock.elapsed_seconds

            combined = combine_and_cap(
                per_window_rules,
                llm.profile,
                prompt_mode,
                self.run_rng(llm.name, prompt_mode),
            )
            self.translate_and_score(
                run, self.semantic_dedup(combined.rules), llm
            )
            mine_span.set_attribute("rules", run.rule_count)
            mine_span.add_sim_time(clock.elapsed_seconds)
        return run
