"""Result records for mining runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.findings import AnalysisReport
from repro.correction.corrector import CorrectionOutcome
from repro.metrics.definitions import AggregateMetrics, RuleMetrics, aggregate
from repro.refine.loop import RefineResult
from repro.rules.model import ConsistencyRule


@dataclass
class RuleResult:
    """Everything known about one mined rule at the end of the pipeline."""

    rule: ConsistencyRule
    outcome: CorrectionOutcome
    metrics: RuleMetrics
    #: static analysis of the final query (None for pre-analyzer archives)
    analysis: Optional[AnalysisReport] = None
    #: metric evaluation was skipped because the bundle is statically doomed
    triage_skipped: bool = False
    #: what the refine loop did, when it ran (None: never triggered)
    refinement: Optional[RefineResult] = None


@dataclass
class MiningRun:
    """One cell of the experiment grid: (dataset, model, method, prompt)."""

    dataset: str
    model: str
    method: str                      # 'sliding_window' | 'rag'
    prompt_mode: str                 # 'zero_shot' | 'few_shot'
    results: list[RuleResult] = field(default_factory=list)
    mining_seconds: float = 0.0      # rule-generation LLM time (Table 5)
    cypher_seconds: float = 0.0      # Cypher-generation LLM time
    window_count: int = 0
    broken_statements: int = 0       # statements split at boundaries
    broken_patterns: int = 0         # incident blocks split (§4.5 counts)
    retrieved_chunks: int = 0        # RAG only
    total_chunks: int = 0            # RAG only
    llm_calls: int = 0               # both LLM steps, all replicas
    prompt_tokens: int = 0           # total prompt tokens sent
    completion_tokens: int = 0       # total completion tokens received

    # ------------------------------------------------------------------
    @property
    def rules(self) -> list[ConsistencyRule]:
        return [result.rule for result in self.results]

    @property
    def rule_count(self) -> int:
        return len(self.results)

    def aggregate_metrics(self) -> AggregateMetrics:
        """The Tables 2-4 cell for this run."""
        return aggregate([result.metrics for result in self.results])

    # Table 6 --------------------------------------------------------
    @property
    def correct_queries(self) -> int:
        return sum(
            1 for result in self.results
            if result.outcome.classification.is_correct
        )

    @property
    def generated_queries(self) -> int:
        return len(self.results)

    def error_census(self) -> dict[str, int]:
        """Count of primary error categories across incorrect queries."""
        census: dict[str, int] = {}
        for result in self.results:
            category = result.outcome.classification.category_name
            if category is not None:
                census[category] = census.get(category, 0) + 1
        return census

    # static analysis ------------------------------------------------
    @property
    def triaged_out(self) -> int:
        """Rules whose metric evaluation was statically skipped."""
        return sum(1 for result in self.results if result.triage_skipped)

    def triage_census(self) -> dict[str, int]:
        """Count of analyzer verdicts across the run's final queries."""
        census: dict[str, int] = {}
        for result in self.results:
            if result.analysis is None:
                continue
            verdict = result.analysis.verdict.value
            census[verdict] = census.get(verdict, 0) + 1
        return census

    # refinement -----------------------------------------------------
    @property
    def refined(self) -> int:
        """Rules the refine loop was invoked on."""
        return sum(
            1 for result in self.results if result.refinement is not None
        )

    @property
    def recovered(self) -> int:
        """Rules the refine loop brought back to a healthy, scored state."""
        return sum(
            1 for result in self.results
            if result.refinement is not None and result.refinement.recovered
        )

    def key(self) -> tuple[str, str, str, str]:
        return (self.dataset, self.model, self.method, self.prompt_mode)
