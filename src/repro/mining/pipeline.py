"""Shared pipeline machinery (Figure 1).

Both encoding strategies share everything but *how the graph text reaches
the LLM*: the :class:`PipelineContext` (graph, schema, encoded
statements, built once per dataset), the combination of per-call rules
into a final set, the second LLM step translating each rule to Cypher,
the §4.4 correction, and the metric evaluation.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro import obs
from repro.correction.corrector import QueryCorrector
from repro.datasets.base import Dataset
from repro.encoding.incident import IncidentEncoder, Statement
from repro.graph.schema import GraphSchema, infer_schema
from repro.graph.store import PropertyGraph
from repro.llm.base import SimulatedClock
from repro.llm.profiles import ModelProfile, get_profile
from repro.llm.simulated import SimulatedLLM
from repro.metrics.definitions import RuleMetrics
from repro.metrics.evaluator import evaluate_rule
from repro.mining.result import MiningRun, RuleResult
from repro.prompts.templates import cypher_prompt
from repro.refine import RefineLoop
from repro.refine.loop import TARGET_CODES
from repro.rules.dedup import deduplicate, merge_property_exists, prune_implied
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.nl import parse_rule_list

ZERO_SHOT = "zero_shot"
FEW_SHOT = "few_shot"
PROMPT_MODES = (ZERO_SHOT, FEW_SHOT)


@dataclass
class PipelineContext:
    """Per-dataset state shared across models, prompts and methods."""

    dataset: Dataset
    statements: list[Statement]
    schema: GraphSchema
    schema_summary: str

    @property
    def graph(self) -> PropertyGraph:
        return self.dataset.graph

    @property
    def name(self) -> str:
        return self.dataset.graph.name

    @classmethod
    def build(cls, dataset: Dataset, encoder=None) -> "PipelineContext":
        encoder = encoder or IncidentEncoder()
        with obs.span("encode", dataset=dataset.graph.name) as sp:
            statements = encoder.encode(dataset.graph)
            schema = infer_schema(dataset.graph)
            sp.set_attribute("statements", len(statements))
            obs.inc(
                "encode.statements", len(statements),
                dataset=dataset.graph.name,
            )
        return cls(
            dataset=dataset,
            statements=statements,
            schema=schema,
            schema_summary=schema.describe(),
        )


@dataclass
class _CombinedRules:
    """Output of the rule-combination step."""

    rules: list[ConsistencyRule]
    per_call_counts: list[int] = field(default_factory=list)


def combine_and_cap(
    per_call_rules: list[list[ConsistencyRule]],
    profile: ModelProfile,
    prompt_mode: str,
    rng: random.Random,
) -> _CombinedRules:
    """§3.1.1's combination step.

    Dedup by signature, fuse same-label PROPERTY_EXISTS rules into one
    multi-property rule (the paper's "date *and stage*" example), rank by
    how many calls re-derived each rule, and select under the profile's
    budget with a diversity penalty so one label cannot flood the set.

    Frequency ranking lets schema-wide regularities beat one-off
    (possibly hallucinated) rules — yet low-frequency rules survive when
    budget remains, so hallucinations reach Table 6 as in the paper.
    """
    frequency: dict[tuple, int] = {}
    first_seen: dict[tuple, tuple[int, ConsistencyRule]] = {}
    order = 0
    for call_rules in per_call_rules:
        for rule in call_rules:
            signature = rule.signature()
            frequency[signature] = frequency.get(signature, 0) + 1
            if signature not in first_seen:
                first_seen[signature] = (order, rule)
                order += 1

    cap = profile.swa_rule_cap
    if prompt_mode == FEW_SHOT:
        cap = max(3, cap - profile.few_shot_reduction)

    # A rule must recur across calls to be trusted: one-off proposals
    # (most hallucinations) fall below the floor.  The floor stays at 2
    # even for many windows because labels cluster in the encoding — a
    # rule about a small label may only ever be visible to the one or
    # two windows covering its region.  Single-call runs (RAG) have no
    # recurrence signal, so the floor is 1 there.
    calls = len(per_call_rules)
    floor = 2 if calls > 1 else 1
    survivors = {
        signature: (order, rule)
        for signature, (order, rule) in first_seen.items()
        if frequency[signature] >= floor
    }
    if not survivors:  # tiny inputs: keep everything rather than nothing
        survivors = dict(first_seen)

    # PROPERTY_EXISTS members must also be frequent *relative to their
    # label's strongest property* before fusing — otherwise a recurring
    # hallucinated property (easy to hit with hundreds of windows) would
    # poison the merged rule
    label_max: dict[str, int] = {}
    for signature, (_order, rule) in survivors.items():
        if rule.kind is RuleKind.PROPERTY_EXISTS and rule.label:
            label_max[rule.label] = max(
                label_max.get(rule.label, 0), frequency[signature]
            )
    filtered = {
        signature: (order, rule)
        for signature, (order, rule) in survivors.items()
        if not (
            rule.kind is RuleKind.PROPERTY_EXISTS
            and rule.label
            and frequency[signature]
            < max(floor, 0.3 * label_max.get(rule.label, 0))
        )
    }
    candidates = [rule for _sig, (_ord, rule) in sorted(
        filtered.items(), key=lambda item: item[1][0]
    )]
    survivors = filtered
    # fuse per-label existence rules; the fused rule inherits the
    # *maximum* member frequency so it keeps its ranking position
    fused = merge_property_exists(candidates)
    fused_frequency: dict[tuple, int] = {}
    for rule in fused:
        if rule.kind is RuleKind.PROPERTY_EXISTS:
            members = [
                frequency[sig] for sig, (_o, member) in survivors.items()
                if member.kind is RuleKind.PROPERTY_EXISTS
                and member.label == rule.label
            ]
            fused_frequency[rule.signature()] = max(members, default=1)
        else:
            fused_frequency[rule.signature()] = frequency.get(
                rule.signature(), 1
            )

    ranked = sorted(
        enumerate(fused),
        key=lambda item: (-fused_frequency[item[1].signature()], item[0]),
    )

    # greedy selection with a diminishing-returns penalty per (kind,
    # label) group: diverse rule sets, like the paper's appendix lists
    kept: list[ConsistencyRule] = []
    group_counts: dict[tuple, int] = {}
    pool = [rule for _index, rule in ranked]
    while pool and len(kept) < cap:
        best_index = 0
        best_score = float("-inf")
        for index, rule in enumerate(pool):
            group = (rule.kind, rule.label or rule.edge_label)
            penalty = 0.55 ** group_counts.get(group, 0)
            score = fused_frequency[rule.signature()] * penalty
            if score > best_score:
                best_score = score
                best_index = index
        chosen = pool.pop(best_index)
        group = (chosen.kind, chosen.label or chosen.edge_label)
        group_counts[group] = group_counts.get(group, 0) + 1
        kept.append(chosen)

    # occasionally a one-off rule (often a hallucination) still makes the
    # final set, as the paper's category-2 queries attest
    rare_pool = pool + [
        rule for signature, (_order, rule) in first_seen.items()
        if signature not in survivors
    ]
    if rare_pool and len(kept) >= cap and rng.random() < 0.2:
        kept[-1] = rng.choice(rare_pool)
    return _CombinedRules(
        rules=kept,
        per_call_counts=[len(rules) for rules in per_call_rules],
    )


def run_seed(*parts: object, base_seed: int = 0) -> int:
    """Stable seed derived from the run coordinates."""
    key = "|".join(str(part) for part in parts)
    return (base_seed << 32) ^ zlib.crc32(key.encode("utf-8"))


class BasePipeline:
    """Steps 2-4 of the pipeline; subclasses implement rule mining."""

    method = "base"

    def __init__(
        self,
        context: PipelineContext,
        base_seed: int = 0,
        refine_budget: int = 0,
    ) -> None:
        self.context = context
        self.base_seed = base_seed
        #: LLM retries the refine loop may spend per broken rule; 0
        #: (the default) disables refinement so paper-grid runs are
        #: bit-identical to the pre-refine pipeline
        self.refine_budget = refine_budget
        self.corrector = QueryCorrector(context.schema)
        #: shared semantic analyzer (also used by the corrector's
        #: classifier); set to None to disable pre-execution triage
        self.analyzer = self.corrector.analyzer
        #: optional wrapper applied to every LLM this pipeline creates —
        #: the service layer uses it to inject transient-failure faults
        #: (and a real deployment could use it for rate limiting or
        #: logging) without subclassing the pipelines
        self.llm_middleware = None

    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Pre-build any lazily-initialised shared state.

        Subclasses override this to chunk windows / build vector
        indexes up front, so concurrent ``mine()`` calls only ever read
        shared state and benchmarks measure mining, not setup.
        """

    # ------------------------------------------------------------------
    def make_llm(
        self, model: str | ModelProfile, prompt_mode: str
    ) -> tuple[SimulatedLLM, SimulatedClock]:
        profile = get_profile(model) if isinstance(model, str) else model
        clock = SimulatedClock()
        llm = SimulatedLLM(
            profile=profile,
            seed=run_seed(
                self.context.name, profile.name, self.method, prompt_mode,
                base_seed=self.base_seed,
            ),
            clock=clock,
        )
        if self.llm_middleware is not None:
            llm = self.llm_middleware(llm)
        return llm, clock

    def run_rng(self, model_name: str, prompt_mode: str) -> random.Random:
        return random.Random(
            run_seed(
                self.context.name, model_name, self.method, prompt_mode,
                "combine", base_seed=self.base_seed,
            )
        )

    # ------------------------------------------------------------------
    def mine(self, model: str, prompt_mode: str) -> MiningRun:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def semantic_dedup(
        self, rules: list[ConsistencyRule]
    ) -> list[ConsistencyRule]:
        """Collapse alpha-renamed / orientation-flipped duplicates.

        ``combine_and_cap`` dedups by field signature, which treats the
        same constraint written with swapped endpoint order as two rules;
        the analyzer's canonical form catches those before the Cypher
        step pays for both.  Implication pruning then drops rules a
        strictly-stronger survivor provably subsumes (A ⇒ B keeps A,
        records B in ``A.implied_by``).
        """
        kept = deduplicate(rules, schema=self.context.schema)
        collapsed = len(rules) - len(kept)
        if collapsed:
            obs.inc("analysis.semantic_duplicates", collapsed)
        pruned = prune_implied(kept, self.context.schema)
        if len(pruned) < len(kept):
            obs.inc("analysis.implied_pruned", len(kept) - len(pruned))
        return pruned

    # ------------------------------------------------------------------
    def translate_and_score(
        self,
        run: MiningRun,
        rules: list[ConsistencyRule],
        llm: SimulatedLLM,
    ) -> None:
        """Second LLM step, correction protocol, metric evaluation."""
        clock_before = llm.clock.elapsed_seconds
        refiner = (
            RefineLoop(
                self.corrector, self.context.schema_summary, llm,
                graph=self.context.graph, budget=self.refine_budget,
            )
            if self.refine_budget > 0 else None
        )
        for rule in rules:
            with obs.span(
                "translate", rule_kind=rule.kind.name, rule=rule.text
            ) as sp:
                prompt = cypher_prompt(rule.text, self.context.schema_summary)
                completion = llm.complete(prompt)
                outcome = self.corrector.correct(rule, completion.text)
                sp.set_attribute("corrected", outcome.corrected)
                analysis, skipped = self._triage(outcome)
                sp.set_attribute(
                    "verdict",
                    analysis.verdict.value if analysis else None,
                )
                if outcome.metric_queries is not None and not skipped:
                    metrics = evaluate_rule(
                        self.context.graph, outcome.metric_queries
                    )
                else:
                    metrics = RuleMetrics(support=0, relevant=0, body=0)
                refinement = None
                if refiner is not None and (
                    skipped
                    or outcome.metric_queries is None
                    or metrics.support == 0
                ):
                    refinement = refiner.refine(rule, outcome)
                    sp.set_attribute("refined", refinement.recovered)
                    if refinement.recovered:
                        rule = refinement.rule
                        outcome = refinement.outcome
                        analysis = refinement.analysis
                        skipped = refinement.triage_skipped
                        metrics = refinement.metrics or RuleMetrics(
                            support=0, relevant=0, body=0
                        )
                run.results.append(RuleResult(
                    rule=rule, outcome=outcome, metrics=metrics,
                    analysis=analysis, triage_skipped=skipped,
                    refinement=refinement,
                ))
        run.cypher_seconds = llm.clock.elapsed_seconds - clock_before
        run.llm_calls = llm.clock.calls
        run.prompt_tokens = llm.clock.prompt_tokens
        run.completion_tokens = llm.clock.completion_tokens

    def _triage(self, outcome) -> tuple:
        """Statically analyze one corrected query before execution.

        Returns ``(analysis_report, skip_evaluation)``.  Evaluation is
        skipped when the rule's *satisfy* query is provably unable to
        produce a row (UNSAT) or unable to run at all (parse error) —
        support is then certainly 0 — and also when the *delivered*
        final query is statically doomed or nulls its own comparisons
        (type confusion): the mined rule was never validly checked, so
        it scores zero until the refine loop repairs it.
        """
        if self.analyzer is None:
            return None, False
        analysis = self.analyzer.analyze(outcome.final_query)
        obs.inc(f"analysis.verdict.{analysis.verdict.value}")
        obs.observe("analysis.findings", len(analysis.findings))
        skipped = False
        if analysis.verdict.dooms_execution or (
            TARGET_CODES & analysis.codes()
        ):
            skipped = True
        elif outcome.metric_queries is not None:
            triage = self.analyzer.triage(outcome.metric_queries.satisfy)
            if not triage.should_evaluate:
                skipped = True
        if skipped:
            obs.inc("analysis.triaged_out")
        return analysis, skipped

    @staticmethod
    def parse_completion(
        completion_text: str, provenance: str
    ) -> list[ConsistencyRule]:
        rules, _unparsed = parse_rule_list(
            completion_text, provenance=provenance
        )
        return rules
