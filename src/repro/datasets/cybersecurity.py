"""Cybersecurity — synthetic stand-in for the Neo4j cybersecurity graph.

Table 1 target: 953 nodes, 4,838 edges, 7 node labels, 16 edge labels.

The public dataset models a BloodHound-style Active Directory
environment: "users, groups, domains, policies, and computers".  Schema:

* nodes — ``Domain`` (2), ``OU`` (20), ``GPO`` (15), ``Group`` (60),
  ``Computer`` (250), ``User`` (600), ``Vulnerability`` (6);
* edges (16 types) — ``MEMBER_OF``, ``ADMIN_TO``, ``HAS_SESSION``,
  ``CONTAINS``, ``GP_LINK``, ``TRUSTED_BY``, ``CAN_RDP``,
  ``EXECUTE_DCOM``, ``ALLOWED_TO_DELEGATE``, ``OWNS``, ``GENERIC_ALL``,
  ``WRITE_DACL``, ``WRITE_OWNER``, ``ADD_MEMBER``,
  ``FORCE_CHANGE_PASSWORD``, ``EXPLOITS``.

The paper's example rules for this dataset — *"The owned property should
only be True or False"* and *"The domain property should be a string
value matching domain format"* — are both real constraints here, and
both are violated by injected dirt.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, DatasetBuilder
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.nl import to_natural_language

NODE_TARGET = 953
EDGE_TARGET = 4838

N_DOMAIN = 2
N_OU = 20
N_GPO = 15
N_GROUP = 60
N_COMPUTER = 250
N_USER = 600
N_VULN = 6

E_CONTAINS = N_OU + N_COMPUTER + N_USER          # 870
E_GP_LINK = 30
E_TRUSTED_BY = 2
E_ADMIN_TO = 300
E_HAS_SESSION = 700
E_CAN_RDP = 400
E_EXECUTE_DCOM = 100
E_DELEGATE = 50
E_OWNS = 80
E_GENERIC_ALL = 60
E_WRITE_DACL = 25
E_WRITE_OWNER = 25
E_ADD_MEMBER = 40
E_FORCE_PWD = 60
E_EXPLOITS = 36
E_MEMBER_OF = EDGE_TARGET - (
    E_CONTAINS + E_GP_LINK + E_TRUSTED_BY + E_ADMIN_TO + E_HAS_SESSION
    + E_CAN_RDP + E_EXECUTE_DCOM + E_DELEGATE + E_OWNS + E_GENERIC_ALL
    + E_WRITE_DACL + E_WRITE_OWNER + E_ADD_MEMBER + E_FORCE_PWD + E_EXPLOITS
)

SEVERITIES = ("Low", "Medium", "High", "Critical")
OPERATING_SYSTEMS = (
    "Windows Server 2016", "Windows Server 2019", "Windows 10 Pro",
    "Windows 10 Enterprise", "Windows 7 Professional",
)
DOMAIN_REGEX = r"([a-z0-9-]+\.)+[a-z]{2,}"
CVE_REGEX = r"CVE-\d{4}-\d{4,5}"


def _rule(kind: RuleKind, **fields: object) -> ConsistencyRule:
    rule = ConsistencyRule(kind=kind, text="", **fields)  # type: ignore[arg-type]
    return ConsistencyRule(
        kind=rule.kind, text=to_natural_language(rule), label=rule.label,
        properties=rule.properties, edge_label=rule.edge_label,
        src_label=rule.src_label, dst_label=rule.dst_label,
        allowed_values=rule.allowed_values,
        pattern_regex=rule.pattern_regex,
        scope_edge_label=rule.scope_edge_label, scope_label=rule.scope_label,
        time_property=rule.time_property,
    )


def true_rules() -> list[ConsistencyRule]:
    """Ground-truth consistency rules that (mostly) hold in the data."""
    return [
        _rule(RuleKind.PROPERTY_EXISTS, label="User",
              properties=("name", "objectid")),
        _rule(RuleKind.PROPERTY_EXISTS, label="Computer",
              properties=("name", "operatingsystem")),
        _rule(RuleKind.UNIQUENESS, label="User", properties=("objectid",)),
        _rule(RuleKind.UNIQUENESS, label="Computer",
              properties=("objectid",)),
        _rule(RuleKind.VALUE_DOMAIN, label="User", properties=("owned",),
              allowed_values=(True, False)),
        _rule(RuleKind.VALUE_DOMAIN, label="Vulnerability",
              properties=("severity",), allowed_values=SEVERITIES),
        _rule(RuleKind.VALUE_FORMAT, label="Domain", properties=("name",),
              pattern_regex=DOMAIN_REGEX),
        _rule(RuleKind.VALUE_FORMAT, label="Vulnerability",
              properties=("cve",), pattern_regex=CVE_REGEX),
        _rule(RuleKind.ENDPOINT, edge_label="HAS_SESSION",
              src_label="Computer", dst_label="User"),
        _rule(RuleKind.ENDPOINT, edge_label="EXPLOITS",
              src_label="Vulnerability", dst_label="Computer"),
        _rule(RuleKind.MANDATORY_EDGE, label="Computer",
              edge_label="CONTAINS", src_label="OU", dst_label="Computer"),
        _rule(RuleKind.NO_SELF_LOOP, label="Group",
              edge_label="MEMBER_OF"),
        _rule(RuleKind.NO_SELF_LOOP, label="User",
              edge_label="FORCE_CHANGE_PASSWORD"),
        _rule(RuleKind.PATTERN, label="GPO", edge_label="GP_LINK",
              dst_label="OU", scope_label="Computer",
              scope_edge_label="CONTAINS"),
    ]


def generate(seed: int = 1021) -> Dataset:
    """Generate the Cybersecurity dataset (deterministic per seed)."""
    builder = DatasetBuilder("Cybersecurity", seed)
    graph = builder.graph
    rng = builder.rng

    domain_ids = []
    for index, name in enumerate(("testlab.local", "corp.example.com"),
                                 start=1):
        node_id = f"domain{index}"
        graph.add_node(node_id, "Domain", {
            "id": index, "name": name, "functionallevel": "2016",
        })
        domain_ids.append(node_id)

    ou_ids = []
    for index in range(1, N_OU + 1):
        node_id = f"ou{index}"
        graph.add_node(node_id, "OU", {
            "id": index, "name": f"OU-{builder.word(5).upper()}",
            "blocksinheritance": rng.random() < 0.1,
        })
        ou_ids.append(node_id)

    gpo_ids = []
    for index in range(1, N_GPO + 1):
        node_id = f"gpo{index}"
        graph.add_node(node_id, "GPO", {
            "id": index, "name": f"GPO-{builder.word(6).upper()}",
            "gpcpath": f"\\\\testlab.local\\sysvol\\{builder.word(8)}",
        })
        gpo_ids.append(node_id)

    group_ids = []
    for index in range(1, N_GROUP + 1):
        node_id = f"group{index}"
        graph.add_node(node_id, "Group", {
            "id": index,
            "name": f"{builder.word(8).upper()}@TESTLAB.LOCAL",
            "objectid": f"S-1-5-21-{1000 + index}",
        })
        group_ids.append(node_id)

    computer_ids = []
    for index in range(1, N_COMPUTER + 1):
        node_id = f"computer{index}"
        graph.add_node(node_id, "Computer", {
            "id": index,
            "name": f"COMP{index:04d}.TESTLAB.LOCAL",
            "objectid": f"S-1-5-21-{20000 + index}",
            "operatingsystem": rng.choice(OPERATING_SYSTEMS),
            "enabled": rng.random() < 0.95,
        })
        computer_ids.append(node_id)

    # AD exports are incomplete: stale accounts miss lastlogon, service
    # accounts miss pwdlastset — the raw material for overgeneralised
    # existence rules (sub-100% confidence)
    user_ids = []
    for index in range(1, N_USER + 1):
        node_id = f"user{index}"
        properties = {
            "id": index,
            "name": f"{builder.word(7).upper()}@TESTLAB.LOCAL",
            "objectid": f"S-1-5-21-{50000 + index}",
            "owned": rng.random() < 0.05,
            "enabled": rng.random() < 0.9,
        }
        if builder.maybe(0.88):
            properties["pwdlastset"] = builder.iso_datetime(2019, 2020)
        if builder.maybe(0.78):
            properties["lastlogon"] = builder.iso_datetime(2020, 2021)
        graph.add_node(node_id, "User", properties)
        user_ids.append(node_id)

    vuln_ids = []
    for index in range(1, N_VULN + 1):
        node_id = f"vuln{index}"
        graph.add_node(node_id, "Vulnerability", {
            "id": index,
            "cve": f"CVE-20{rng.randint(18, 21)}-{rng.randint(1000, 99999)}",
            "severity": rng.choice(SEVERITIES),
        })
        vuln_ids.append(node_id)

    # --- edges ---------------------------------------------------------
    for index, ou_id in enumerate(ou_ids):
        graph.add_edge(
            builder.next_edge_id("ct"), "CONTAINS",
            domain_ids[index % N_DOMAIN], ou_id,
        )
    # containment is concentrated: most principals live in a few big OUs
    # (realistic for AD), producing long incident blocks that break at
    # window boundaries — the §4.5 broken-pattern counts
    for index, computer_id in enumerate(computer_ids):
        ou_index = index % 6 if index % 5 else index % N_OU
        graph.add_edge(
            builder.next_edge_id("ct"), "CONTAINS",
            ou_ids[ou_index], computer_id,
        )
    for index, user_id in enumerate(user_ids):
        ou_index = index % 6 if index % 5 else index % N_OU
        graph.add_edge(
            builder.next_edge_id("ct"), "CONTAINS",
            ou_ids[ou_index], user_id,
        )

    for index in range(E_GP_LINK):
        graph.add_edge(
            builder.next_edge_id("gp"), "GP_LINK",
            gpo_ids[index % N_GPO], ou_ids[index % N_OU],
        )
    graph.add_edge(builder.next_edge_id("tr"), "TRUSTED_BY",
                   domain_ids[0], domain_ids[1])
    graph.add_edge(builder.next_edge_id("tr"), "TRUSTED_BY",
                   domain_ids[1], domain_ids[0])

    def random_edges(label, prefix, count, sources, targets,
                     no_self=True, properties=None):
        pairs: set[tuple[str, str]] = set()
        while len(pairs) < count:
            pair = (rng.choice(sources), rng.choice(targets))
            if no_self and pair[0] == pair[1]:
                continue
            if pair in pairs:
                continue
            pairs.add(pair)
            props = properties(pair) if properties else None
            graph.add_edge(
                builder.next_edge_id(prefix), label, pair[0], pair[1], props
            )

    member_users = E_MEMBER_OF - 400 - 160
    random_edges("MEMBER_OF", "mo", member_users, user_ids, group_ids)
    random_edges("MEMBER_OF", "mo", 400, computer_ids, group_ids)
    random_edges("MEMBER_OF", "mo", 160, group_ids, group_ids)
    random_edges("ADMIN_TO", "at", E_ADMIN_TO, group_ids, computer_ids)
    random_edges(
        "HAS_SESSION", "hs", E_HAS_SESSION, computer_ids, user_ids,
        properties=lambda pair: {"since": builder.iso_datetime(2020, 2021)},
    )
    random_edges("CAN_RDP", "rd", E_CAN_RDP, user_ids, computer_ids)
    random_edges("EXECUTE_DCOM", "dc", E_EXECUTE_DCOM, user_ids, computer_ids)
    random_edges("ALLOWED_TO_DELEGATE", "dl", E_DELEGATE,
                 computer_ids, computer_ids)
    random_edges("OWNS", "ow", E_OWNS, user_ids, computer_ids)
    random_edges("GENERIC_ALL", "ga", E_GENERIC_ALL, group_ids, user_ids)
    random_edges("WRITE_DACL", "wd", E_WRITE_DACL, group_ids, gpo_ids)
    random_edges("WRITE_OWNER", "wo", E_WRITE_OWNER, group_ids, user_ids)
    random_edges("ADD_MEMBER", "am", E_ADD_MEMBER, group_ids, group_ids)
    random_edges("FORCE_CHANGE_PASSWORD", "fp", E_FORCE_PWD,
                 user_ids, user_ids)
    random_edges(
        "EXPLOITS", "ex", E_EXPLOITS, vuln_ids, computer_ids,
        properties=lambda pair: {"discovered": builder.iso_date(2020, 2021)},
    )

    _inject_dirt(builder, user_ids, computer_ids, group_ids, vuln_ids)
    builder.check_table1(NODE_TARGET, EDGE_TARGET, 7, 16)
    return Dataset(graph=graph, true_rules=true_rules(), dirt=builder.dirt)


def _inject_dirt(
    builder: DatasetBuilder,
    user_ids: list[str],
    computer_ids: list[str],
    group_ids: list[str],
    vuln_ids: list[str],
) -> None:
    graph = builder.graph
    rng = builder.rng

    # 1) 'owned' outside its {True, False} domain — the paper's example
    for user_id in rng.sample(user_ids, 5):
        graph.update_node(user_id, {"owned": "Unknown"})
        builder.dirt.note("domain_violation:User.owned")

    # 2) missing operatingsystem on some computers
    for computer_id in rng.sample(computer_ids, 8):
        graph.remove_node_property(computer_id, "operatingsystem")
        builder.dirt.note("missing_property:Computer.operatingsystem")

    # 3) duplicated user objectid
    victim, donor = rng.sample(user_ids, 2)
    graph.update_node(
        victim, {"objectid": graph.node(donor).properties["objectid"]}
    )
    builder.dirt.note("duplicate_key:User.objectid")

    # 4) a group that is a member of itself
    group = rng.choice(group_ids)
    graph.add_edge(builder.next_edge_id("mo"), "MEMBER_OF", group, group)
    removable = next(
        edge for edge in graph.edges(label="MEMBER_OF")
        if edge.src != edge.dst
    )
    graph.remove_edge(removable.id)
    builder.dirt.note("self_loop:Group.MEMBER_OF")

    # 5) a user forced to change their own password (self-loop)
    user = rng.choice(user_ids)
    graph.add_edge(
        builder.next_edge_id("fp"), "FORCE_CHANGE_PASSWORD", user, user
    )
    removable = next(
        edge for edge in graph.edges(label="FORCE_CHANGE_PASSWORD")
        if edge.src != edge.dst
    )
    graph.remove_edge(removable.id)
    builder.dirt.note("self_loop:User.FORCE_CHANGE_PASSWORD")

    # 6) a malformed CVE identifier
    graph.update_node(rng.choice(vuln_ids), {"cve": "CVE-BADFORMAT"})
    builder.dirt.note("format_violation:Vulnerability.cve")

    # 7) a computer outside any OU (CONTAINS edge moved to a user)
    orphan = rng.choice(computer_ids)
    for edge in list(graph.in_edges(orphan, label="CONTAINS")):
        ou = edge.src
        graph.remove_edge(edge.id)
        graph.add_edge(
            builder.next_edge_id("ct"), "CONTAINS", ou, rng.choice(user_ids)
        )
    builder.dirt.note("orphan:Computer.CONTAINS")
