"""Dataset snapshots: ship a generated dataset to another process.

The gateway's worker fleet runs in separate OS processes.  Rather than
trusting every process to regenerate a dataset identically (or to even
know how a custom dataset was built), the gateway serialises the exact
:class:`~repro.datasets.base.Dataset` it computed job ids against —
graph, ground-truth rules and dirt report — and workers reconstruct it
from the snapshot file.  The graph rides on :mod:`repro.graph.io`'s
JSON format; rules use :meth:`repro.rules.model.ConsistencyRule.to_dict`.

Writes are atomic (unique tmp file + ``os.replace``) so a worker that
races a snapshot refresh never reads a torn file.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.datasets.base import Dataset, DirtReport
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.rules.model import ConsistencyRule

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset",
    "save_dataset",
]

SNAPSHOT_FORMAT_VERSION = 1


class SnapshotError(ValueError):
    """The snapshot payload cannot be read by this library."""


def dataset_to_dict(dataset: Dataset) -> dict[str, Any]:
    """Render a dataset as a JSON-serialisable dict."""
    return {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "graph": graph_to_dict(dataset.graph),
        "true_rules": [rule.to_dict() for rule in dataset.true_rules],
        "dirt": dict(dataset.dirt.injected),
    }


def dataset_from_dict(payload: dict[str, Any]) -> Dataset:
    """Rebuild a dataset from :func:`dataset_to_dict` output."""
    version = payload.get("format_version", SNAPSHOT_FORMAT_VERSION)
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"dataset snapshot uses format version {version!r}; this "
            f"library reads version {SNAPSHOT_FORMAT_VERSION}"
        )
    try:
        graph = graph_from_dict(payload["graph"])
        rules = [
            ConsistencyRule.from_dict(record)
            for record in payload.get("true_rules", ())
        ]
        dirt = DirtReport(injected=dict(payload.get("dirt", {})))
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(f"malformed dataset snapshot: {error}") from error
    return Dataset(graph=graph, true_rules=rules, dirt=dirt)


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write a dataset snapshot atomically; returns the final path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / (
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    tmp.write_text(json.dumps(dataset_to_dict(dataset)))
    os.replace(tmp, path)
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Read a snapshot written by :func:`save_dataset`."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise SnapshotError(
            f"cannot read dataset snapshot {path}: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise SnapshotError(f"dataset snapshot {path} is not a JSON object")
    return dataset_from_dict(payload)
