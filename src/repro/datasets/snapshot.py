"""Dataset snapshots: ship a generated dataset to another process.

The gateway's worker fleet runs in separate OS processes.  Rather than
trusting every process to regenerate a dataset identically (or to even
know how a custom dataset was built), the gateway serialises the exact
:class:`~repro.datasets.base.Dataset` it computed job ids against —
graph, ground-truth rules and dirt report — and workers reconstruct it
from the snapshot file.  The graph rides on :mod:`repro.graph.io`'s
JSON format; rules use :meth:`repro.rules.model.ConsistencyRule.to_dict`.

Writes are atomic (unique tmp file + ``os.replace``) so a worker that
races a snapshot refresh never reads a torn file.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.datasets.base import Dataset, DirtReport
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.rules.model import ConsistencyRule

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset",
    "save_dataset",
]

SNAPSHOT_FORMAT_VERSION = 1


class SnapshotError(ValueError):
    """The snapshot payload cannot be read by this library."""


def dataset_to_dict(
    dataset: Dataset, *, include_csr: bool = False
) -> dict[str, Any]:
    """Render a dataset as a JSON-serialisable dict.

    With ``include_csr`` the compiled columnar snapshot of the graph is
    embedded under ``"csr"`` (checksummed; see
    :func:`repro.graph.columnar.to_payload`), so the loading process can
    adopt it instead of recompiling — gateway workers load snapshots on
    their hot path.  A graph whose cached snapshot carries overlays is
    compiled fresh for the artifact.
    """
    payload = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "graph": graph_to_dict(dataset.graph),
        "true_rules": [rule.to_dict() for rule in dataset.true_rules],
        "dirt": dict(dataset.dirt.injected),
    }
    if include_csr:
        from repro.graph.columnar import (
            ColumnarArtifactError,
            compile_graph,
            to_payload,
        )

        snapshot = dataset.graph.columnar()
        try:
            payload["csr"] = to_payload(snapshot)
        except ColumnarArtifactError:
            # the cached snapshot has incremental overlays; artifacts
            # must be base-array-only, so compile one for the wire
            payload["csr"] = to_payload(compile_graph(dataset.graph))
    return payload


def dataset_from_dict(payload: dict[str, Any]) -> Dataset:
    """Rebuild a dataset from :func:`dataset_to_dict` output.

    An embedded ``"csr"`` artifact is validated against the rebuilt
    graph and adopted as its columnar snapshot; a corrupt or mismatched
    artifact is dropped (counter ``graph.csr.artifact_fallbacks``) and
    the graph recompiles lazily on first use — never an error.
    """
    version = payload.get("format_version", SNAPSHOT_FORMAT_VERSION)
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"dataset snapshot uses format version {version!r}; this "
            f"library reads version {SNAPSHOT_FORMAT_VERSION}"
        )
    try:
        graph = graph_from_dict(payload["graph"])
        rules = [
            ConsistencyRule.from_dict(record)
            for record in payload.get("true_rules", ())
        ]
        dirt = DirtReport(injected=dict(payload.get("dirt", {})))
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(f"malformed dataset snapshot: {error}") from error
    csr = payload.get("csr")
    if csr is not None:
        from repro import obs
        from repro.graph.columnar import from_payload

        try:
            graph.adopt_columnar(from_payload(csr, graph))
        except Exception:
            obs.inc("graph.csr.artifact_fallbacks")
        else:
            obs.inc("graph.csr.artifact_loads")
    return Dataset(graph=graph, true_rules=rules, dirt=dirt)


def save_dataset(
    dataset: Dataset, path: str | Path, *, include_csr: bool = False
) -> Path:
    """Write a dataset snapshot atomically; returns the final path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / (
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    tmp.write_text(json.dumps(dataset_to_dict(dataset, include_csr=include_csr)))
    os.replace(tmp, path)
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Read a snapshot written by :func:`save_dataset`."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise SnapshotError(
            f"cannot read dataset snapshot {path}: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise SnapshotError(f"dataset snapshot {path} is not a JSON object")
    return dataset_from_dict(payload)
