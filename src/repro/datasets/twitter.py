"""Twitter — synthetic stand-in for the Neo4j twitter-v2 example graph.

Table 1 target: 43,325 nodes, 56,493 edges, 6 node labels, 8 edge labels.

Schema (mirroring github.com/neo4j-graph-examples/twitter-v2):

* nodes — ``Me`` (1), ``User`` (18,000), ``Tweet`` (22,000),
  ``Hashtag`` (2,200), ``Link`` (1,000), ``Source`` (124);
* edges — ``POSTS`` User→Tweet, ``FOLLOWS`` User→User, ``TAGS``
  Tweet→Hashtag, ``MENTIONS`` Tweet→User, ``RETWEETS`` Tweet→Tweet,
  ``REPLY_TO`` Tweet→Tweet, ``CONTAINS`` Tweet→Link, ``USING``
  Tweet→Source.

The paper's intro examples for this domain — "a retweet can occur only
after the original tweet has been posted", "users cannot follow
themselves", "every tweet must be associated with a valid user who
posted it" — are all real constraints here, each with injected
violations.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, DatasetBuilder
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.nl import to_natural_language

NODE_TARGET = 43325
EDGE_TARGET = 56493

N_ME = 1
N_USER = 18000
N_TWEET = 22000
N_HASHTAG = 2200
N_LINK = 1000
N_SOURCE = NODE_TARGET - N_ME - N_USER - N_TWEET - N_HASHTAG - N_LINK

E_POSTS = N_TWEET
E_TAGS = 8000
E_MENTIONS = 6000
E_RETWEETS = 3500
E_REPLY_TO = 2500
E_CONTAINS = 1500
E_USING = 993
E_FOLLOWS = EDGE_TARGET - (
    E_POSTS + E_TAGS + E_MENTIONS + E_RETWEETS + E_REPLY_TO
    + E_CONTAINS + E_USING
)

URL_REGEX = r"https?://[a-z0-9./-]+"


def _rule(kind: RuleKind, **fields: object) -> ConsistencyRule:
    rule = ConsistencyRule(kind=kind, text="", **fields)  # type: ignore[arg-type]
    return ConsistencyRule(
        kind=rule.kind, text=to_natural_language(rule), label=rule.label,
        properties=rule.properties, edge_label=rule.edge_label,
        src_label=rule.src_label, dst_label=rule.dst_label,
        allowed_values=rule.allowed_values,
        pattern_regex=rule.pattern_regex,
        scope_edge_label=rule.scope_edge_label, scope_label=rule.scope_label,
        time_property=rule.time_property,
    )


def true_rules() -> list[ConsistencyRule]:
    """Ground-truth consistency rules that (mostly) hold in the data."""
    return [
        _rule(RuleKind.UNIQUENESS, label="Tweet", properties=("id",)),
        _rule(RuleKind.UNIQUENESS, label="User", properties=("id",)),
        _rule(RuleKind.PROPERTY_EXISTS, label="Tweet",
              properties=("id", "text", "created_at")),
        _rule(RuleKind.PROPERTY_EXISTS, label="User",
              properties=("screen_name",)),
        _rule(RuleKind.ENDPOINT, edge_label="POSTS",
              src_label="User", dst_label="Tweet"),
        _rule(RuleKind.ENDPOINT, edge_label="TAGS",
              src_label="Tweet", dst_label="Hashtag"),
        _rule(RuleKind.MANDATORY_EDGE, label="Tweet", edge_label="POSTS",
              src_label="User", dst_label="Tweet"),
        _rule(RuleKind.NO_SELF_LOOP, label="User", edge_label="FOLLOWS"),
        _rule(RuleKind.TEMPORAL_ORDER, edge_label="RETWEETS",
              src_label="Tweet", dst_label="Tweet",
              time_property="created_at"),
        _rule(RuleKind.TEMPORAL_ORDER, edge_label="REPLY_TO",
              src_label="Tweet", dst_label="Tweet",
              time_property="created_at"),
        _rule(RuleKind.VALUE_FORMAT, label="Link", properties=("url",),
              pattern_regex=URL_REGEX),
    ]


def generate(seed: int = 280) -> Dataset:
    """Generate the Twitter dataset (deterministic per seed)."""
    builder = DatasetBuilder("Twitter", seed)
    graph = builder.graph
    rng = builder.rng

    graph.add_node("me", "Me", {
        "id": 0, "screen_name": "me", "name": "The Account Owner",
    })

    # real profiles are incomplete: location, display name and follower
    # counts are optional.  Windows that happen to see mostly-complete
    # samples will overgeneralise "should have" rules from them, which
    # is where sub-100% confidence comes from (§4.3).
    user_ids = []
    for index in range(1, N_USER + 1):
        node_id = f"user{index}"
        properties = {
            "id": index,
            "screen_name": f"@{builder.word(8)}",
        }
        if builder.maybe(0.85):
            properties["name"] = builder.word(6).title()
        if builder.maybe(0.9):
            properties["followers"] = rng.randint(0, 100_000)
        if builder.maybe(0.72):
            properties["location"] = builder.word(7).title()
        graph.add_node(node_id, "User", properties)
        user_ids.append(node_id)

    # tweets are generated in timestamp order: index order == time order
    tweet_ids = []
    base_minutes = 0
    for index in range(1, N_TWEET + 1):
        base_minutes += rng.randint(1, 9)
        day = base_minutes // 1440
        hour = (base_minutes % 1440) // 60
        minute = base_minutes % 60
        month = min(1 + day // 28, 12)
        created = (
            f"2021-{month:02d}-{(day % 28) + 1:02d}"
            f"T{hour:02d}:{minute:02d}:00"
        )
        node_id = f"tweet{index}"
        properties = {
            "id": index,
            "text": builder.sentence(rng.randint(3, 9)),
            "created_at": created,
        }
        if builder.maybe(0.8):
            properties["favorites"] = rng.randint(0, 5000)
        graph.add_node(node_id, "Tweet", properties)
        tweet_ids.append(node_id)

    hashtag_ids = []
    for index in range(1, N_HASHTAG + 1):
        node_id = f"hashtag{index}"
        graph.add_node(node_id, "Hashtag", {
            "id": index, "name": f"#{builder.word(7)}",
        })
        hashtag_ids.append(node_id)

    link_ids = []
    for index in range(1, N_LINK + 1):
        node_id = f"link{index}"
        graph.add_node(node_id, "Link", {
            "id": index,
            "url": f"https://{builder.word(7)}.com/{builder.word(5)}",
        })
        link_ids.append(node_id)

    source_ids = []
    for index in range(1, N_SOURCE + 1):
        node_id = f"source{index}"
        graph.add_node(node_id, "Source", {
            "id": index, "name": f"Twitter for {builder.word(7).title()}",
        })
        source_ids.append(node_id)

    # --- edges ---------------------------------------------------------
    for index, tweet_id in enumerate(tweet_ids):
        graph.add_edge(
            builder.next_edge_id("po"), "POSTS",
            user_ids[index % N_USER], tweet_id,
        )

    # follower graphs are heavy-tailed: a few accounts follow hundreds.
    # The resulting long incident blocks are the ones window boundaries
    # break (§4.5's broken-pattern counts)
    follow_pairs: set[tuple[str, str]] = set()
    while len(follow_pairs) < E_FOLLOWS:
        src = user_ids[int(len(user_ids) * rng.random() ** 3)]
        pair = (src, rng.choice(user_ids))
        if pair[0] == pair[1] or pair in follow_pairs:
            continue
        follow_pairs.add(pair)
        graph.add_edge(
            builder.next_edge_id("fo"), "FOLLOWS", pair[0], pair[1]
        )

    def tweet_to(label, prefix, count, targets):
        pairs: set[tuple[str, str]] = set()
        while len(pairs) < count:
            pair = (rng.choice(tweet_ids), rng.choice(targets))
            if pair in pairs:
                continue
            pairs.add(pair)
            graph.add_edge(
                builder.next_edge_id(prefix), label, pair[0], pair[1]
            )

    tweet_to("TAGS", "tg", E_TAGS, hashtag_ids)
    tweet_to("MENTIONS", "mn", E_MENTIONS, user_ids)
    tweet_to("CONTAINS", "cn", E_CONTAINS, link_ids)
    tweet_to("USING", "us", E_USING, source_ids)

    # RETWEETS and REPLY_TO point from a later tweet to an earlier one,
    # so created_at ordering holds by construction
    def later_to_earlier(label, prefix, count):
        pairs: set[tuple[str, str]] = set()
        while len(pairs) < count:
            later = rng.randint(2, N_TWEET) - 1       # index into tweet_ids
            earlier = rng.randint(1, later) - 1
            pair = (tweet_ids[later], tweet_ids[earlier])
            if pair[0] == pair[1] or pair in pairs:
                continue
            pairs.add(pair)
            graph.add_edge(
                builder.next_edge_id(prefix), label, pair[0], pair[1]
            )
        return pairs

    later_to_earlier("RETWEETS", "rt", E_RETWEETS)
    later_to_earlier("REPLY_TO", "rp", E_REPLY_TO)

    _inject_dirt(builder, user_ids, tweet_ids, link_ids)
    builder.check_table1(NODE_TARGET, EDGE_TARGET, 6, 8)
    return Dataset(graph=graph, true_rules=true_rules(), dirt=builder.dirt)


def _inject_dirt(
    builder: DatasetBuilder,
    user_ids: list[str],
    tweet_ids: list[str],
    link_ids: list[str],
) -> None:
    graph = builder.graph
    rng = builder.rng

    # 1) duplicate tweet ids (violates the paper's flagship Twitter rule)
    for _ in range(6):
        victim, donor = rng.sample(tweet_ids, 2)
        graph.update_node(victim, {"id": graph.node(donor).properties["id"]})
        builder.dirt.note("duplicate_key:Tweet.id")

    # 2) retweets that pre-date the original tweet
    retweets = [edge for edge in graph.edges(label="RETWEETS")]
    for edge in rng.sample(retweets, 12):
        src_created = graph.node(edge.src).properties["created_at"]
        graph.update_node(edge.dst, {"created_at": "2022-01-01T00:00:00"})
        builder.dirt.note("temporal_violation:RETWEETS.created_at")
        del src_created

    # 3) users following themselves
    for _ in range(8):
        user = rng.choice(user_ids)
        graph.add_edge(builder.next_edge_id("fo"), "FOLLOWS", user, user)
        removable = next(
            e for e in graph.edges(label="FOLLOWS") if e.src != e.dst
        )
        graph.remove_edge(removable.id)
        builder.dirt.note("self_loop:User.FOLLOWS")

    # 4) tweets with no posting user (orphans)
    for tweet_id in rng.sample(tweet_ids, 10):
        for edge in list(graph.in_edges(tweet_id, label="POSTS")):
            graph.remove_edge(edge.id)
            # keep the POSTS census: someone double-posts another tweet
            other = rng.choice(tweet_ids)
            while other == tweet_id:
                other = rng.choice(tweet_ids)
            graph.add_edge(
                builder.next_edge_id("po"), "POSTS",
                rng.choice(user_ids), other,
            )
        builder.dirt.note("orphan:Tweet.POSTS")

    # 5) missing created_at / screen_name
    for tweet_id in rng.sample(tweet_ids, 40):
        graph.remove_node_property(tweet_id, "created_at")
        builder.dirt.note("missing_property:Tweet.created_at")
    for user_id in rng.sample(user_ids, 25):
        graph.remove_node_property(user_id, "screen_name")
        builder.dirt.note("missing_property:User.screen_name")

    # 6) malformed URLs
    for link_id in rng.sample(link_ids, 7):
        graph.update_node(link_id, {"url": "notaurl"})
        builder.dirt.note("format_violation:Link.url")
