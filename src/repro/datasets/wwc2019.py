"""WWC2019 — synthetic stand-in for the Neo4j Women's World Cup 2019 graph.

Table 1 target: 2,468 nodes, 14,799 edges, 5 node labels, 9 edge labels.

Schema (mirroring github.com/neo4j-graph-examples/wwc2019):

* nodes — ``Tournament`` (1), ``Team`` (24), ``Squad`` (24), ``Match``
  (52), ``Person`` (2,367);
* edges — ``IN_TOURNAMENT`` Match→Tournament, ``PLAYED_IN``
  Person→Match, ``SCORED_GOAL`` Person→Match (minute, penalty),
  ``IN_SQUAD`` Person→Squad, ``FOR`` Squad→Tournament, ``NAMED_SQUAD``
  Team→Squad, ``COACH_FOR`` Person→Team, ``REPRESENTS`` Person→Team,
  ``QUALIFIED_FOR`` Team→Tournament.

Injected dirt (so confidence lands below 100% for the right reasons):
matches missing ``stage``/``date``; duplicated match identifiers inside
the tournament; two goals by the same player in the same minute of the
same match; one squad without a ``FOR`` edge to the tournament.
"""

from __future__ import annotations

from repro.datasets.base import Dataset, DatasetBuilder
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.nl import to_natural_language

NODE_TARGET = 2468
EDGE_TARGET = 14799

N_TOURNAMENT = 1
N_TEAM = 24
N_SQUAD = 24
N_MATCH = 52
N_PERSON = NODE_TARGET - N_TOURNAMENT - N_TEAM - N_SQUAD - N_MATCH

E_IN_TOURNAMENT = N_MATCH
E_SCORED_GOAL = 146
E_IN_SQUAD = 552            # 23 players per squad
E_FOR = N_SQUAD
E_NAMED_SQUAD = N_SQUAD
E_COACH_FOR = N_TEAM
E_REPRESENTS = N_PERSON
E_QUALIFIED_FOR = N_TEAM
E_PLAYED_IN = EDGE_TARGET - (
    E_IN_TOURNAMENT + E_SCORED_GOAL + E_IN_SQUAD + E_FOR
    + E_NAMED_SQUAD + E_COACH_FOR + E_REPRESENTS + E_QUALIFIED_FOR
)

STAGES = ("Group", "Round of 16", "Quarter-final", "Semi-final", "Final")

COUNTRIES = (
    "France", "USA", "Germany", "England", "Netherlands", "Sweden",
    "Japan", "Canada", "Australia", "Brazil", "Norway", "Spain",
    "Italy", "China", "South Korea", "Nigeria", "Chile", "Argentina",
    "Scotland", "Thailand", "Cameroon", "New Zealand", "Jamaica",
    "South Africa",
)


def _rule(kind: RuleKind, **fields: object) -> ConsistencyRule:
    rule = ConsistencyRule(kind=kind, text="", **fields)  # type: ignore[arg-type]
    return ConsistencyRule(
        kind=rule.kind, text=to_natural_language(rule), label=rule.label,
        properties=rule.properties, edge_label=rule.edge_label,
        src_label=rule.src_label, dst_label=rule.dst_label,
        allowed_values=rule.allowed_values,
        pattern_regex=rule.pattern_regex,
        scope_edge_label=rule.scope_edge_label, scope_label=rule.scope_label,
        time_property=rule.time_property,
    )


def true_rules() -> list[ConsistencyRule]:
    """Ground-truth consistency rules that (mostly) hold in the data."""
    return [
        _rule(RuleKind.PROPERTY_EXISTS, label="Match",
              properties=("date", "stage")),
        _rule(RuleKind.PROPERTY_EXISTS, label="Person", properties=("name",)),
        _rule(RuleKind.UNIQUENESS, label="Person", properties=("id",)),
        _rule(RuleKind.UNIQUENESS, label="Team", properties=("id",)),
        _rule(RuleKind.UNIQUENESS, label="Match", properties=("id",)),
        _rule(RuleKind.PRIMARY_KEY, label="Match", properties=("id",),
              scope_label="Tournament", scope_edge_label="IN_TOURNAMENT"),
        _rule(RuleKind.VALUE_DOMAIN, label="Match", properties=("stage",),
              allowed_values=STAGES),
        _rule(RuleKind.ENDPOINT, edge_label="SCORED_GOAL",
              src_label="Person", dst_label="Match"),
        _rule(RuleKind.ENDPOINT, edge_label="IN_TOURNAMENT",
              src_label="Match", dst_label="Tournament"),
        _rule(RuleKind.EDGE_PROP_EXISTS, edge_label="SCORED_GOAL",
              properties=("minute",)),
        _rule(RuleKind.TEMPORAL_UNIQUE, edge_label="SCORED_GOAL",
              src_label="Person", dst_label="Match",
              time_property="minute"),
        _rule(RuleKind.PATTERN, label="Person", edge_label="IN_SQUAD",
              dst_label="Squad", scope_label="Tournament",
              scope_edge_label="FOR"),
        _rule(RuleKind.MANDATORY_EDGE, label="Squad",
              edge_label="NAMED_SQUAD", src_label="Team",
              dst_label="Squad"),
    ]


def generate(seed: int = 2019) -> Dataset:
    """Generate the WWC2019 dataset (deterministic for a given seed)."""
    builder = DatasetBuilder("WWC2019", seed)
    graph = builder.graph
    rng = builder.rng

    graph.add_node("tournament1", "Tournament", {
        "id": "WWC2019",
        "name": "FIFA Women's World Cup 2019",
        "year": 2019,
    })

    team_ids = []
    for index, country in enumerate(COUNTRIES, start=1):
        node_id = f"team{index}"
        graph.add_node(node_id, "Team", {
            "id": index, "name": country,
            "ranking": rng.randint(1, 50),
        })
        team_ids.append(node_id)

    squad_ids = []
    for index in range(1, N_SQUAD + 1):
        node_id = f"squad{index}"
        graph.add_node(node_id, "Squad", {
            "id": index, "name": f"{COUNTRIES[index - 1]} squad",
        })
        squad_ids.append(node_id)

    match_ids = []
    for index in range(1, N_MATCH + 1):
        stage = STAGES[0] if index <= 36 else (
            STAGES[1] if index <= 44 else (
                STAGES[2] if index <= 48 else (
                    STAGES[3] if index <= 50 else STAGES[4]
                )
            )
        )
        node_id = f"match{index}"
        properties = {
            "id": index,
            "date": f"2019-06-{(index % 28) + 1:02d}",
            "stage": stage,
        }
        if builder.maybe(0.85):
            properties["referee"] = f"Referee {rng.randint(1, 30)}"
        graph.add_node(node_id, "Match", properties)
        match_ids.append(node_id)

    # dates of birth are incomplete in the source data; windows seeing
    # mostly-complete samples will overgeneralise an existence rule
    person_ids = []
    for index in range(1, N_PERSON + 1):
        node_id = f"person{index}"
        properties = {
            "id": index,
            "name": f"{builder.word(6).title()} {builder.word(8).title()}",
        }
        if builder.maybe(0.82):
            properties["dob"] = builder.iso_date(1980, 2001)
        graph.add_node(node_id, "Person", properties)
        person_ids.append(node_id)

    # --- edges ---------------------------------------------------------
    for match_id in match_ids:
        graph.add_edge(
            builder.next_edge_id("it"), "IN_TOURNAMENT",
            match_id, "tournament1",
        )
    for squad_id in squad_ids:
        graph.add_edge(
            builder.next_edge_id("for"), "FOR", squad_id, "tournament1"
        )
    for team_id, squad_id in zip(team_ids, squad_ids):
        graph.add_edge(
            builder.next_edge_id("ns"), "NAMED_SQUAD", team_id, squad_id
        )
    for team_id in team_ids:
        graph.add_edge(
            builder.next_edge_id("qf"), "QUALIFIED_FOR",
            team_id, "tournament1",
        )

    # squad membership: 23 players per squad, drawn from the front of the
    # person list so the same people also coach/represent coherently
    squad_members: dict[str, list[str]] = {}
    cursor = 0
    for squad_id in squad_ids:
        members = person_ids[cursor:cursor + 23]
        cursor += 23
        squad_members[squad_id] = members
        for person_id in members:
            graph.add_edge(
                builder.next_edge_id("sq"), "IN_SQUAD", person_id, squad_id
            )

    for index, team_id in enumerate(team_ids):
        coach = person_ids[cursor + index]
        graph.add_edge(
            builder.next_edge_id("cf"), "COACH_FOR", coach, team_id
        )

    for index, person_id in enumerate(person_ids):
        graph.add_edge(
            builder.next_edge_id("rep"), "REPRESENTS",
            person_id, team_ids[index % len(team_ids)],
        )

    # appearances are skewed toward the squad players at the front of the
    # person list (star players rack up 30+ appearances) — this gives
    # some nodes incident blocks longer than the window overlap, which is
    # what breaks patterns at window boundaries (§4.5)
    played_pairs: set[tuple[str, str]] = set()
    while len(played_pairs) < E_PLAYED_IN:
        person = person_ids[int(len(person_ids) * rng.random() ** 2.5)]
        pair = (person, rng.choice(match_ids))
        if pair in played_pairs:
            continue
        played_pairs.add(pair)
        graph.add_edge(
            builder.next_edge_id("pl"), "PLAYED_IN", pair[0], pair[1],
            {"minutes": rng.randint(1, 95)},
        )

    # ordered list + membership set: iteration order must not depend on
    # hash randomisation or generation stops being reproducible
    goal_triples: list[tuple[str, str, int]] = []
    seen_goals: set[tuple[str, str, int]] = set()
    scorers = person_ids[:552]  # goals come from squad players
    while len(goal_triples) < E_SCORED_GOAL:
        triple = (
            rng.choice(scorers), rng.choice(match_ids), rng.randint(1, 90)
        )
        if triple in seen_goals:
            continue
        seen_goals.add(triple)
        goal_triples.append(triple)
        graph.add_edge(
            builder.next_edge_id("gl"), "SCORED_GOAL", triple[0], triple[1],
            {"minute": triple[2], "penalty": rng.random() < 0.1},
        )

    _inject_dirt(builder, match_ids, squad_ids, goal_triples)
    builder.check_table1(NODE_TARGET, EDGE_TARGET, 5, 9)
    return Dataset(graph=graph, true_rules=true_rules(), dirt=builder.dirt)


def _inject_dirt(
    builder: DatasetBuilder,
    match_ids: list[str],
    squad_ids: list[str],
    goal_triples: list[tuple[str, str, int]],
) -> None:
    graph = builder.graph
    rng = builder.rng

    # 1) missing mandatory properties on Match
    for match_id in rng.sample(match_ids, 3):
        graph.remove_node_property(match_id, "stage")
        builder.dirt.note("missing_property:Match.stage")
    graph.remove_node_property(rng.choice(match_ids), "date")
    builder.dirt.note("missing_property:Match.date")

    # 2) duplicated Match identifier within the tournament
    victim, donor = rng.sample(match_ids, 2)
    graph.update_node(victim, {"id": graph.node(donor).properties["id"]})
    builder.dirt.note("duplicate_key:Match.id")

    # 3) two goals by the same player in the same minute of one match
    for src, dst, minute in rng.sample(goal_triples, 2):
        graph.add_edge(
            builder.next_edge_id("gl"), "SCORED_GOAL", src, dst,
            {"minute": minute, "penalty": False},
        )
        # balance the edge count: drop one PLAYED_IN appearance
        extra = next(graph.edges(label="PLAYED_IN"))
        graph.remove_edge(extra.id)
        builder.dirt.note("temporal_duplicate:SCORED_GOAL.minute")

    # 4) one squad loses its FOR edge; another gets a parallel one so the
    #    edge-label census stays on target
    orphan = squad_ids[-1]
    for edge in list(graph.out_edges(orphan, label="FOR")):
        graph.remove_edge(edge.id)
    graph.add_edge(
        builder.next_edge_id("for"), "FOR", squad_ids[0], "tournament1"
    )
    builder.dirt.note("broken_pattern:Squad-FOR-Tournament")

    # 5) a stage value outside the domain
    graph.update_node(rng.choice(match_ids), {"stage": "Knockout"})
    builder.dirt.note("domain_violation:Match.stage")
