"""Shared infrastructure for the synthetic dataset generators.

Each generator reproduces the *schema* of a public Neo4j example dataset
(node/edge labels, property vocabulary, key relationships) and the exact
element counts of the paper's Table 1, with a seeded random layer for
property values and for injected inconsistencies ("dirt") so that
confidence scores land below 100% for the right reasons.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.graph.store import PropertyGraph
from repro.rules.model import ConsistencyRule


@dataclass
class DirtReport:
    """Accounting of injected inconsistencies, keyed by rule kind."""

    injected: dict[str, int] = field(default_factory=dict)

    def note(self, kind: str, count: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + count

    def total(self) -> int:
        return sum(self.injected.values())


@dataclass
class Dataset:
    """A generated dataset: graph, ground-truth rules and dirt report."""

    graph: PropertyGraph
    true_rules: list[ConsistencyRule]
    dirt: DirtReport


class DatasetBuilder:
    """Seeded helpers used by all generators."""

    def __init__(self, name: str, seed: int) -> None:
        self.graph = PropertyGraph(name=name)
        self.rng = random.Random(seed)
        self.dirt = DirtReport()
        self._edge_counter = 0

    # ------------------------------------------------------------------
    def next_edge_id(self, prefix: str) -> str:
        self._edge_counter += 1
        return f"{prefix}{self._edge_counter}"

    def word(self, length: int = 8) -> str:
        return "".join(
            self.rng.choice(string.ascii_lowercase) for _ in range(length)
        )

    def sentence(self, words: int) -> str:
        return " ".join(self.word(self.rng.randint(3, 9)) for _ in range(words))

    def iso_date(self, year_lo: int = 2018, year_hi: int = 2021) -> str:
        year = self.rng.randint(year_lo, year_hi)
        month = self.rng.randint(1, 12)
        day = self.rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"

    def iso_datetime(self, year_lo: int = 2018, year_hi: int = 2021) -> str:
        date = self.iso_date(year_lo, year_hi)
        hour = self.rng.randint(0, 23)
        minute = self.rng.randint(0, 59)
        second = self.rng.randint(0, 59)
        return f"{date}T{hour:02d}:{minute:02d}:{second:02d}"

    def maybe(self, probability: float) -> bool:
        return self.rng.random() < probability

    def choice(self, items):
        return self.rng.choice(items)

    def sample(self, items, count: int):
        return self.rng.sample(items, count)

    # ------------------------------------------------------------------
    def check_table1(
        self, nodes: int, edges: int, node_labels: int, edge_labels: int
    ) -> None:
        """Assert the generated sizes equal the paper's Table 1 row."""
        actual = (
            self.graph.node_count(),
            self.graph.edge_count(),
            len(self.graph.node_labels()),
            len(self.graph.edge_labels()),
        )
        expected = (nodes, edges, node_labels, edge_labels)
        if actual != expected:
            raise AssertionError(
                f"{self.graph.name}: generated sizes {actual} != "
                f"Table 1 target {expected}"
            )
