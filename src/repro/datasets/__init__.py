"""Synthetic dataset generators matching the paper's Table 1."""

from repro.datasets.base import Dataset, DatasetBuilder, DirtReport
from repro.datasets.registry import (
    DATASET_NAMES,
    DISPLAY_NAMES,
    clear_cache,
    load,
)

__all__ = [
    "DATASET_NAMES",
    "DISPLAY_NAMES",
    "Dataset",
    "DatasetBuilder",
    "DirtReport",
    "clear_cache",
    "load",
]
