"""Synthetic dataset generators matching the paper's Table 1."""

from repro.datasets.base import Dataset, DatasetBuilder, DirtReport
from repro.datasets.registry import (
    DATASET_NAMES,
    DISPLAY_NAMES,
    clear_cache,
    load,
)
from repro.datasets.snapshot import (
    SnapshotError,
    load_dataset,
    save_dataset,
)

__all__ = [
    "DATASET_NAMES",
    "DISPLAY_NAMES",
    "Dataset",
    "DatasetBuilder",
    "DirtReport",
    "SnapshotError",
    "clear_cache",
    "load",
    "load_dataset",
    "save_dataset",
]
