"""Name-based access to the three study datasets."""

from __future__ import annotations

from typing import Callable

from repro.datasets import cybersecurity, twitter, wwc2019
from repro.datasets.base import Dataset

#: dataset name -> (generator, default seed)
_GENERATORS: dict[str, tuple[Callable[[int], Dataset], int]] = {
    "wwc2019": (wwc2019.generate, 2019),
    "cybersecurity": (cybersecurity.generate, 1021),
    "twitter": (twitter.generate, 280),
}

#: Presentation order used throughout the paper's tables.
DATASET_NAMES = ("wwc2019", "cybersecurity", "twitter")

#: Table captions use these display names.
DISPLAY_NAMES = {
    "wwc2019": "WWC2019",
    "cybersecurity": "Cybersecurity",
    "twitter": "Twitter",
}

_CACHE: dict[tuple[str, int], Dataset] = {}


def load(name: str, seed: int | None = None, cache: bool = True) -> Dataset:
    """Generate (or fetch from cache) a dataset by name.

    Generation is deterministic per (name, seed); caching avoids repeated
    multi-second builds of the Twitter graph inside the experiment grid.
    """
    key = name.lower()
    if key not in _GENERATORS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_GENERATORS)}"
        )
    generator, default_seed = _GENERATORS[key]
    effective_seed = default_seed if seed is None else seed
    cache_key = (key, effective_seed)
    if cache and cache_key in _CACHE:
        return _CACHE[cache_key]
    dataset = generator(effective_seed)
    if cache:
        _CACHE[cache_key] = dataset
    return dataset


def clear_cache() -> None:
    """Drop all cached datasets (useful in tests)."""
    _CACHE.clear()
