"""Rule explanations (§5's fourth future-work direction).

"Enabling LLMs to explain the rationale behind the rules they generate
would improve transparency and provide valuable insights into the
underlying data patterns."

:func:`explain_rule` grounds a rule in the graph it was mined from: it
recomputes the statistical evidence (how many elements the rule touches,
how complete/unique/ordered the data actually is) and renders a short
rationale plus the counter-examples, so a reviewer can judge the rule on
evidence rather than on the model's say-so.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cypher.executor import execute
from repro.graph.schema import GraphSchema
from repro.graph.store import PropertyGraph
from repro.metrics.evaluator import evaluate_rule
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.translator import RuleTranslator, UntranslatableRuleError


@dataclass(frozen=True)
class Explanation:
    """The grounded rationale for one rule."""

    rule: ConsistencyRule
    rationale: str
    evidence: dict[str, object]
    counter_examples: tuple[dict, ...]

    def render(self) -> str:
        lines = [f"RULE   {self.rule.text}", f"WHY    {self.rationale}"]
        for key, value in self.evidence.items():
            lines.append(f"  {key}: {value}")
        if self.counter_examples:
            lines.append("COUNTER-EXAMPLES:")
            for row in self.counter_examples:
                lines.append(f"  {row}")
        return "\n".join(lines)


_KIND_TEMPLATES = {
    RuleKind.PROPERTY_EXISTS: (
        "{matching} of {total} {label} nodes carry {props}; treating the "
        "property as mandatory flags the {missing} without it."
    ),
    RuleKind.UNIQUENESS: (
        "{distinct} of {total} {label} nodes hold a {props} value no "
        "other node has; {dupes} share theirs with another."
    ),
    RuleKind.VALUE_DOMAIN: (
        "observed values of {props} on {label} concentrate on "
        "{domain}; {outside} node(s) fall outside it."
    ),
    RuleKind.VALUE_FORMAT: (
        "{matching} of {present} non-null {props} values match the "
        "format; the rest are malformed."
    ),
    RuleKind.ENDPOINT: (
        "all sampled {edge} relationships run {src} -> {dst}; the rule "
        "pins that direction and typing."
    ),
    RuleKind.MANDATORY_EDGE: (
        "{covered} of {total} {label} nodes participate in a {edge} "
        "relationship; the {uncovered} that do not are suspicious."
    ),
    RuleKind.NO_SELF_LOOP: (
        "{clean} of {total} {edge} relationships connect distinct "
        "nodes; {loops} self-loop(s) violate the rule."
    ),
    RuleKind.TEMPORAL_ORDER: (
        "{ordered} of {total} {edge} relationships respect the "
        "{time} ordering; {violating} run backwards in time."
    ),
    RuleKind.TEMPORAL_UNIQUE: (
        "{unique} of {total} {edge} relationships have a distinct "
        "{time} per endpoint pair; {collisions} collide."
    ),
    RuleKind.PRIMARY_KEY: (
        "{unique} of {total} scoped key values are unique within their "
        "{scope}; {collisions} collide."
    ),
    RuleKind.PATTERN: (
        "{closed} of {total} {label}-{edge} pairs close the "
        "{scope_edge} hop to {scope}; {open} do not."
    ),
    RuleKind.EDGE_PROP_EXISTS: (
        "{matching} of {total} {edge} relationships carry {props}."
    ),
}


def explain_rule(
    graph: PropertyGraph,
    schema: GraphSchema,
    rule: ConsistencyRule,
    max_counter_examples: int = 5,
) -> Explanation:
    """Ground ``rule`` in the data and produce a rationale."""
    translator = RuleTranslator(schema)
    try:
        queries = translator.translate(rule)
    except UntranslatableRuleError:
        return Explanation(
            rule=rule,
            rationale="the rule is underspecified and cannot be checked",
            evidence={},
            counter_examples=(),
        )
    metrics = evaluate_rule(graph, queries)

    evidence: dict[str, object] = {
        "support": metrics.support,
        "head relation size": metrics.relevant,
        "body matches": metrics.body,
        "coverage": f"{metrics.coverage:.1f}%",
        "confidence": f"{metrics.confidence:.1f}%",
    }
    counter_examples: tuple[dict, ...] = ()
    if queries.violations is not None:
        try:
            rows = execute(graph, queries.violations).rows
            counter_examples = tuple(rows[:max_counter_examples])
            evidence["violations"] = len(rows)
        except Exception:
            evidence["violations"] = "query failed (hallucinated fields?)"

    rationale = _render_rationale(rule, metrics, evidence)
    return Explanation(
        rule=rule, rationale=rationale, evidence=evidence,
        counter_examples=counter_examples,
    )


def _render_rationale(rule, metrics, evidence) -> str:
    template = _KIND_TEMPLATES.get(rule.kind)
    values = {
        "label": rule.label or "?",
        "props": " and ".join(rule.properties) or "?",
        "edge": rule.edge_label or "?",
        "src": rule.src_label or "?",
        "dst": rule.dst_label or "?",
        "time": rule.time_property or "?",
        "scope": rule.scope_label or "?",
        "scope_edge": rule.scope_edge_label or "?",
        "domain": ", ".join(repr(v) for v in rule.allowed_values) or "?",
        "total": metrics.relevant,
        "present": metrics.body,
        "matching": metrics.support,
        "missing": metrics.relevant - metrics.support,
        "distinct": metrics.support,
        "dupes": metrics.body - metrics.support,
        "outside": metrics.body - metrics.support,
        "covered": metrics.support,
        "uncovered": metrics.relevant - metrics.support,
        "clean": metrics.support,
        "loops": metrics.body - metrics.support,
        "ordered": metrics.support,
        "violating": metrics.body - metrics.support,
        "unique": metrics.support,
        "collisions": max(metrics.body - metrics.support, 0),
        "closed": metrics.support,
        "open": metrics.body - metrics.support,
    }
    if template is None:
        return (
            f"the rule holds for {metrics.support} of {metrics.body} "
            "body matches"
        )
    return template.format(**values)
