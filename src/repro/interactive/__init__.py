"""Interactive refinement and explanations (the paper's future work)."""

from repro.interactive.explain import Explanation, explain_rule
from repro.interactive.session import (
    AuditRecord,
    RefinementSession,
    RuleStatus,
    SessionEntry,
)

__all__ = [
    "AuditRecord",
    "Explanation",
    "RefinementSession",
    "RuleStatus",
    "SessionEntry",
    "explain_rule",
]
