"""Interactive rule refinement (§5's third future-work direction).

"Developing interactive rule mining techniques could allow users to
engage in the rule extraction process, offering real-time feedback to
refine the rules."

A :class:`RefinementSession` wraps a mining run and lets a domain expert
(or a script standing in for one):

* inspect each rule with its metrics and its violating elements;
* **accept** / **reject** rules;
* **edit** a rule by restating it in natural language — the edited rule
  is re-translated and re-scored immediately;
* **tighten** a VALUE_DOMAIN rule to the values actually observed, or
  **widen** it by adding values;
* export the accepted set as (rule, Cypher, metrics) triples.

All state transitions are recorded so a session is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.cypher.executor import execute
from repro.graph.schema import GraphSchema
from repro.graph.store import PropertyGraph
from repro.metrics.definitions import RuleMetrics
from repro.metrics.evaluator import evaluate_rule
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.nl import from_natural_language, to_natural_language
from repro.rules.translator import (
    MetricQueries,
    RuleTranslator,
    UntranslatableRuleError,
)


class RuleStatus(Enum):
    PENDING = "pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    EDITED = "edited"      # replaced by a user restatement


@dataclass
class SessionEntry:
    """One rule under review."""

    rule: ConsistencyRule
    status: RuleStatus
    metrics: Optional[RuleMetrics]
    queries: Optional[MetricQueries]
    note: str = ""
    replaced_by: Optional[int] = None   # index of the edit's new entry


@dataclass
class AuditRecord:
    action: str
    entry_index: int
    detail: str = ""


@dataclass
class RefinementSession:
    """Review loop over a set of mined rules."""

    graph: PropertyGraph
    schema: GraphSchema
    entries: list[SessionEntry] = field(default_factory=list)
    audit_log: list[AuditRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def from_rules(
        cls,
        graph: PropertyGraph,
        schema: GraphSchema,
        rules: list[ConsistencyRule],
    ) -> "RefinementSession":
        session = cls(graph=graph, schema=schema)
        for rule in rules:
            session._add_entry(rule)
        return session

    def _add_entry(self, rule: ConsistencyRule) -> int:
        translator = RuleTranslator(self.schema)
        try:
            queries = translator.translate(rule)
            metrics = evaluate_rule(self.graph, queries)
        except UntranslatableRuleError:
            queries = None
            metrics = None
        self.entries.append(SessionEntry(
            rule=rule, status=RuleStatus.PENDING,
            metrics=metrics, queries=queries,
        ))
        return len(self.entries) - 1

    # ------------------------------------------------------------------
    # review verbs
    # ------------------------------------------------------------------
    def accept(self, index: int, note: str = "") -> SessionEntry:
        entry = self._pending(index)
        entry.status = RuleStatus.ACCEPTED
        entry.note = note
        self.audit_log.append(AuditRecord("accept", index, note))
        return entry

    def reject(self, index: int, note: str = "") -> SessionEntry:
        entry = self._pending(index)
        entry.status = RuleStatus.REJECTED
        entry.note = note
        self.audit_log.append(AuditRecord("reject", index, note))
        return entry

    def edit(self, index: int, new_sentence: str) -> SessionEntry:
        """Replace a rule with a natural-language restatement.

        The restatement must parse under the canonical rule grammar; the
        new rule is translated and scored immediately and enters the
        session as a fresh PENDING entry.
        """
        entry = self._pending(index)
        new_rule = from_natural_language(
            new_sentence, provenance=f"edit-of-{index}"
        )
        if new_rule is None:
            raise ValueError(
                f"could not parse the restated rule: {new_sentence!r}"
            )
        entry.status = RuleStatus.EDITED
        new_index = self._add_entry(new_rule)
        entry.replaced_by = new_index
        self.audit_log.append(AuditRecord("edit", index, new_sentence))
        return self.entries[new_index]

    def tighten_domain(self, index: int) -> SessionEntry:
        """Restrict a VALUE_DOMAIN rule to the values present in the data
        (the typical fix for a partial domain mined from one window)."""
        entry = self._pending(index)
        rule = entry.rule
        if rule.kind is not RuleKind.VALUE_DOMAIN or not rule.label:
            raise ValueError("tighten_domain applies to VALUE_DOMAIN rules")
        key = rule.properties[0]
        result = execute(
            self.graph,
            f"MATCH (n:{rule.label}) WHERE n.{key} IS NOT NULL "
            f"RETURN DISTINCT n.{key} AS value",
        )
        observed = tuple(sorted(result.values("value"), key=repr))
        widened = ConsistencyRule(
            kind=rule.kind, text="", label=rule.label,
            properties=rule.properties, allowed_values=observed,
        )
        sentence = to_natural_language(widened)
        self.audit_log.append(AuditRecord("tighten", index, sentence))
        entry.status = RuleStatus.EDITED
        new_index = self._add_entry(ConsistencyRule(
            kind=rule.kind, text=sentence, label=rule.label,
            properties=rule.properties, allowed_values=observed,
            provenance=f"tighten-of-{index}",
        ))
        entry.replaced_by = new_index
        return self.entries[new_index]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def violations(self, index: int, limit: int = 10) -> list[dict]:
        """Concrete violating elements for one rule (empty if clean)."""
        entry = self.entries[index]
        if entry.queries is None or entry.queries.violations is None:
            return []
        try:
            result = execute(self.graph, entry.queries.violations)
        except Exception:
            return []
        return result.rows[:limit]

    def pending(self) -> list[int]:
        return [
            index for index, entry in enumerate(self.entries)
            if entry.status is RuleStatus.PENDING
        ]

    def accepted(self) -> list[SessionEntry]:
        return [
            entry for entry in self.entries
            if entry.status is RuleStatus.ACCEPTED
        ]

    def export(self) -> list[tuple[ConsistencyRule, str, RuleMetrics]]:
        """The accepted set as (rule, check query, metrics) triples."""
        exported = []
        for entry in self.accepted():
            if entry.queries is not None and entry.metrics is not None:
                exported.append(
                    (entry.rule, entry.queries.check, entry.metrics)
                )
        return exported

    def summary(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for entry in self.entries:
            tally[entry.status.value] = tally.get(entry.status.value, 0) + 1
        return tally

    # ------------------------------------------------------------------
    def _pending(self, index: int) -> SessionEntry:
        entry = self.entries[index]
        if entry.status is not RuleStatus.PENDING:
            raise ValueError(
                f"entry {index} already {entry.status.value}"
            )
        return entry
