"""Deterministic tokenizer approximating LLM subword tokenization.

The study budgets windows in *LLM tokens* (8,000-token windows with a
500-token overlap, the LLaMA-3 limits).  Offline we need a deterministic
stand-in: words and punctuation become tokens, and long words are split
into fixed-size pieces, which approximates byte-pair encoding closely
enough for window-size arithmetic.
"""

from __future__ import annotations

import re
from typing import Iterable

#: Maximum characters per token piece (BPE pieces average ~4-6 chars).
PIECE_SIZE = 6

_WORD_RE = re.compile(r"\w+|[^\w\s]")


def split_tokens(text: str) -> list[str]:
    """Split ``text`` into deterministic pseudo-BPE tokens."""
    tokens: list[str] = []
    for match in _WORD_RE.finditer(text):
        word = match.group(0)
        if len(word) <= PIECE_SIZE:
            tokens.append(word)
        else:
            tokens.extend(
                word[i:i + PIECE_SIZE] for i in range(0, len(word), PIECE_SIZE)
            )
    return tokens


def token_spans(text: str) -> list[tuple[int, int]]:
    """Character spans ``(start, end)`` of each pseudo-token in ``text``.

    Used by the window chunker to cut windows at token boundaries while
    preserving the original text verbatim (including mid-statement cuts).
    """
    spans: list[tuple[int, int]] = []
    for match in _WORD_RE.finditer(text):
        start, end = match.span()
        length = end - start
        if length <= PIECE_SIZE:
            spans.append((start, end))
        else:
            for offset in range(0, length, PIECE_SIZE):
                piece_start = start + offset
                spans.append((piece_start, min(piece_start + PIECE_SIZE, end)))
    return spans


def count_tokens(text: str) -> int:
    """Number of pseudo-tokens in ``text``."""
    return len(split_tokens(text))


def count_tokens_many(texts: Iterable[str]) -> int:
    """Total token count across several strings."""
    return sum(count_tokens(text) for text in texts)
