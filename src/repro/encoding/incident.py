"""The *incident encoder*: property graph → text statements.

Following Fatemi et al. ("Talk like a Graph", ICLR 2024), the incident
encoding describes the graph node by node: each node statement lists the
node's labels and properties, followed by one statement per outgoing edge
naming the neighbour, its labels, the edge label and the edge properties.

The encoder emits a list of *statements*.  Joining them (newline-separated)
gives the prompt text; keeping them separate lets the window chunker and
the simulated LLM account for statements broken at window boundaries —
the fragmentation phenomenon §3.1.1 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.model import Edge, Node
from repro.graph.store import PropertyGraph


def format_value(value: object) -> str:
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, list):
        return "[" + ", ".join(format_value(item) for item in value) + "]"
    return str(value)


def format_properties(properties: dict) -> str:
    if not properties:
        return "()"
    body = ", ".join(
        f"{key}: {format_value(value)}"
        for key, value in sorted(properties.items())
    )
    return f"({body})"


@dataclass(frozen=True)
class Statement:
    """One encoded statement with its kind ('node' or 'edge')."""

    kind: str
    text: str
    subject_id: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


class IncidentEncoder:
    """Encodes a property graph into incident-style text statements."""

    name = "incident"

    def encode_node(self, node: Node) -> Statement:
        labels = ":".join(node.sorted_labels()) or "None"
        text = (
            f"Node {node.id} with label {labels} has properties "
            f"{format_properties(node.properties)}."
        )
        return Statement(kind="node", text=text, subject_id=node.id)

    def encode_edge(self, graph: PropertyGraph, edge: Edge) -> Statement:
        src_labels = ":".join(graph.node(edge.src).sorted_labels()) or "None"
        dst_labels = ":".join(graph.node(edge.dst).sorted_labels()) or "None"
        text = (
            f"Node {edge.src} ({src_labels}) connects to node {edge.dst} "
            f"({dst_labels}) via edge {edge.id} with label {edge.label} "
            f"and properties {format_properties(edge.properties)}."
        )
        return Statement(kind="edge", text=text, subject_id=edge.id)

    def encode(self, graph: PropertyGraph) -> list[Statement]:
        """Node statement, then its outgoing edge statements, per node."""
        statements: list[Statement] = []
        for node in graph.nodes():
            statements.append(self.encode_node(node))
            for edge in graph.out_edges(node.id):
                statements.append(self.encode_edge(graph, edge))
        return statements

    def encode_text(self, graph: PropertyGraph) -> str:
        """The full incident encoding as one newline-joined string."""
        return "\n".join(s.text for s in self.encode(graph))
