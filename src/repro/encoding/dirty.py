"""Dirty-window invalidation: graph deltas → stale encoding regions.

The incident encoding is block-structured: one node statement followed by
that node's outgoing-edge statements.  A mutation therefore dirties a
small, computable set of blocks —

* node add / property change → the node's own block;
* edge add / remove / property change → the *source* node's block (edge
  statements live inside it; destination labels are immutable so the
  destination's block never changes on its account);
* node removal → the block disappears (incident edges cascade as their
  own edge deltas first).

Given a delta batch this module answers two questions: which windows of
the previous :class:`~repro.encoding.windows.WindowSet` are invalidated
(:func:`invalidated_windows`), and what the refreshed statement list is
without re-encoding clean blocks (:func:`refresh_statements` — guaranteed
value-identical to a full ``encoder.encode(graph)``).  After re-chunking,
:func:`changed_window_indexes` gives the exact set of windows whose text
changed, i.e. the only ones continuous mining must prompt again.
"""

from __future__ import annotations

from repro import obs
from repro.encoding.incident import IncidentEncoder, Statement
from repro.encoding.windows import WindowSet, statement_token_ranges
from repro.graph.changelog import DeltaKind, GraphDelta
from repro.graph.store import PropertyGraph


def dirty_block_subjects(
    deltas: list[GraphDelta],
) -> tuple[set[str], set[str]]:
    """Partition delta subjects into (dirty node ids, removed node ids).

    Processed chronologically so a node removed and later re-added ends
    up dirty, not removed, and vice versa.
    """
    dirty: set[str] = set()
    removed: set[str] = set()
    for delta in deltas:
        if delta.kind is DeltaKind.NODE_REMOVED:
            removed.add(delta.subject_id)
            dirty.discard(delta.subject_id)
        elif delta.kind is DeltaKind.NODE_ADDED:
            dirty.add(delta.subject_id)
            removed.discard(delta.subject_id)
        elif delta.kind is DeltaKind.NODE_PROPS:
            dirty.add(delta.subject_id)
        elif delta.src is not None:
            dirty.add(delta.src)
    return dirty - removed, removed


def _block_spans(statements: list[Statement]) -> dict[str, tuple[int, int]]:
    """Node subject id → [first, last] statement index of its block."""
    spans: dict[str, tuple[int, int]] = {}
    current: str | None = None
    for index, statement in enumerate(statements):
        if statement.kind == "node":
            current = statement.subject_id
            spans[current] = (index, index)
        elif current is not None:
            spans[current] = (spans[current][0], index)
    return spans


def invalidated_windows(
    window_set: WindowSet,
    statements: list[Statement],
    deltas: list[GraphDelta],
) -> list[int]:
    """Window indexes the delta batch invalidates, sorted.

    Windows overlapping a dirty or removed block's token range are
    invalid; blocks with no prior position (new nodes append at the
    encoding's tail) invalidate the final window.  This is a prediction
    over the *old* window set — after refreshing and re-chunking,
    :func:`changed_window_indexes` is the authoritative answer.
    """
    if not window_set.windows:
        return []
    dirty, removed = dirty_block_subjects(deltas)
    subjects = dirty | removed
    if not subjects:
        return []
    ranges = statement_token_ranges(statements)
    blocks = _block_spans(statements)
    invalid: set[int] = set()
    tail_index = window_set.windows[-1].index
    for subject in sorted(subjects):
        span = blocks.get(subject)
        if span is None:
            invalid.add(tail_index)  # appended block: tail window grows
            continue
        first = ranges[span[0]][0]
        last = ranges[span[1]][1]
        for window in window_set.windows:
            if window.start_token <= last and first < window.end_token:
                invalid.add(window.index)
    return sorted(invalid)


def changed_window_indexes(old: WindowSet, new: WindowSet) -> list[int]:
    """Indexes of windows in ``new`` that differ textually from ``old``.

    The exact re-mining worklist: a window with identical text yields an
    identical prompt, so its prior mining output still stands.
    """
    changed: list[int] = []
    old_windows = {window.index: window for window in old.windows}
    for window in new.windows:
        previous = old_windows.get(window.index)
        if previous is None or previous.text != window.text:
            changed.append(window.index)
    return changed


def refresh_statements(
    graph: PropertyGraph,
    statements: list[Statement],
    deltas: list[GraphDelta],
    encoder: IncidentEncoder | None = None,
) -> list[Statement]:
    """Refresh an encoded statement list after a delta batch.

    Clean incident blocks are reused verbatim; only blocks
    :func:`dirty_block_subjects` marks dirty are re-encoded.  The result
    is value-identical to ``encoder.encode(graph)`` (node iteration order
    comes from the graph, so re-added nodes correctly move to the tail).
    """
    encoder = encoder or IncidentEncoder()
    dirty, _removed = dirty_block_subjects(deltas)
    spans = _block_spans(statements)

    refreshed: list[Statement] = []
    reused = 0
    reencoded = 0
    for node in graph.nodes():
        span = spans.get(node.id)
        if span is not None and node.id not in dirty:
            refreshed.extend(statements[span[0]:span[1] + 1])
            reused += 1
            continue
        refreshed.append(encoder.encode_node(node))
        for edge in graph.out_edges(node.id):
            refreshed.append(encoder.encode_edge(graph, edge))
        reencoded += 1
    if reused:
        obs.inc("encoding.blocks_reused", reused)
    if reencoded:
        obs.inc("encoding.blocks_reencoded", reencoded)
    return refreshed
