"""Adjacency encoder — a compact alternative graph-to-text encoding.

Kept as an ablation against the paper's choice of incident encoding
(Fatemi et al. compare several encoders; the paper adopts *incident* for
its demonstrated effectiveness).  The adjacency encoder lists nodes first,
then edges as bare (src, label, dst) triples without repeating endpoint
labels — cheaper in tokens, but it forces the reader to join endpoints
with node statements that may live in a different window.
"""

from __future__ import annotations

from repro.encoding.incident import Statement, format_properties
from repro.graph.model import Edge, Node
from repro.graph.store import PropertyGraph


class AdjacencyEncoder:
    """Encodes a property graph as node statements plus bare edge triples."""

    name = "adjacency"

    def encode_node(self, node: Node) -> Statement:
        labels = ":".join(node.sorted_labels()) or "None"
        text = (
            f"Node {node.id} with label {labels} has properties "
            f"{format_properties(node.properties)}."
        )
        return Statement(kind="node", text=text, subject_id=node.id)

    def encode_edge(self, edge: Edge) -> Statement:
        text = (
            f"Edge {edge.id}: {edge.src} -{edge.label}-> {edge.dst} "
            f"with properties {format_properties(edge.properties)}."
        )
        return Statement(kind="edge", text=text, subject_id=edge.id)

    def encode(self, graph: PropertyGraph) -> list[Statement]:
        statements = [self.encode_node(node) for node in graph.nodes()]
        statements.extend(self.encode_edge(edge) for edge in graph.edges())
        return statements

    def encode_text(self, graph: PropertyGraph) -> str:
        return "\n".join(s.text for s in self.encode(graph))
