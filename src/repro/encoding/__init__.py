"""Graph-to-text encoding: tokenizer, encoders and sliding windows."""

from repro.encoding.adjacency import AdjacencyEncoder
from repro.encoding.dirty import (
    changed_window_indexes,
    dirty_block_subjects,
    invalidated_windows,
    refresh_statements,
)
from repro.encoding.incident import (
    IncidentEncoder,
    Statement,
    format_properties,
    format_value,
)
from repro.encoding.tokenizer import (
    count_tokens,
    count_tokens_many,
    split_tokens,
    token_spans,
)
from repro.encoding.windows import (
    DEFAULT_OVERLAP,
    DEFAULT_WINDOW_SIZE,
    SlidingWindowChunker,
    Window,
    WindowSet,
    statement_token_ranges,
)

ENCODERS = {
    IncidentEncoder.name: IncidentEncoder,
    AdjacencyEncoder.name: AdjacencyEncoder,
}

__all__ = [
    "AdjacencyEncoder",
    "DEFAULT_OVERLAP",
    "DEFAULT_WINDOW_SIZE",
    "ENCODERS",
    "IncidentEncoder",
    "SlidingWindowChunker",
    "Statement",
    "Window",
    "WindowSet",
    "changed_window_indexes",
    "count_tokens",
    "count_tokens_many",
    "dirty_block_subjects",
    "format_properties",
    "format_value",
    "invalidated_windows",
    "refresh_statements",
    "split_tokens",
    "statement_token_ranges",
    "token_spans",
]
