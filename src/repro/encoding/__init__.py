"""Graph-to-text encoding: tokenizer, encoders and sliding windows."""

from repro.encoding.adjacency import AdjacencyEncoder
from repro.encoding.incident import (
    IncidentEncoder,
    Statement,
    format_properties,
    format_value,
)
from repro.encoding.tokenizer import (
    count_tokens,
    count_tokens_many,
    split_tokens,
    token_spans,
)
from repro.encoding.windows import (
    DEFAULT_OVERLAP,
    DEFAULT_WINDOW_SIZE,
    SlidingWindowChunker,
    Window,
    WindowSet,
)

ENCODERS = {
    IncidentEncoder.name: IncidentEncoder,
    AdjacencyEncoder.name: AdjacencyEncoder,
}

__all__ = [
    "AdjacencyEncoder",
    "DEFAULT_OVERLAP",
    "DEFAULT_WINDOW_SIZE",
    "ENCODERS",
    "IncidentEncoder",
    "SlidingWindowChunker",
    "Statement",
    "Window",
    "WindowSet",
    "count_tokens",
    "count_tokens_many",
    "format_properties",
    "format_value",
    "split_tokens",
    "token_spans",
]
