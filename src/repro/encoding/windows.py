"""Sliding-window chunking of encoded graph text (§3.1.1).

The encoded graph is divided into windows of ``window_size`` pseudo-tokens
with ``overlap`` tokens shared between consecutive windows (the paper uses
8,000 and 500, the maximum the LLM allows).  Cutting happens at token
boundaries, so a statement can be split across a window edge — e.g. one
window ending with ``"Node node_id"`` and the next starting with
``"with label Label has properties (key: value)"``.  The chunker accounts
for every statement that is *not* fully contained in at least one window:
those are the paper's *broken patterns* (§4.5 reports 6 / 11 / 6 for the
three datasets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encoding.incident import Statement
from repro.encoding.tokenizer import token_spans

#: The paper's operating point (tokens).
DEFAULT_WINDOW_SIZE = 8000
DEFAULT_OVERLAP = 500


def statement_token_ranges(
    statements: list["Statement"],
    spans: list[tuple[int, int]] | None = None,
) -> list[tuple[int, int]]:
    """Map each statement to its [first, last] token index range.

    ``spans`` are the token character spans of the newline-joined text;
    recomputed when not supplied.  Shared by the chunker's fragmentation
    accounting and the dirty-window invalidation in
    :mod:`repro.encoding.dirty`.
    """
    if spans is None:
        text = "\n".join(statement.text for statement in statements)
        spans = token_spans(text)
    total = len(spans)
    ranges: list[tuple[int, int]] = []
    cursor = 0
    offset = 0
    for statement in statements:
        start_char = offset
        end_char = offset + len(statement.text)
        first = None
        last = None
        while cursor < total and spans[cursor][0] < end_char:
            if spans[cursor][1] > start_char:
                if first is None:
                    first = cursor
                last = cursor
            cursor += 1
        if first is None:
            first = last = max(cursor - 1, 0)
        ranges.append((first, last))
        offset = end_char + 1  # the joining newline
    return ranges


@dataclass(frozen=True)
class Window:
    """One window of encoded-graph text."""

    index: int
    text: str
    start_token: int
    end_token: int          # exclusive

    @property
    def token_count(self) -> int:
        return self.end_token - self.start_token


@dataclass
class WindowSet:
    """All windows over one encoding, plus fragmentation accounting.

    Two granularities are tracked:

    * **broken statements** — single encoded statements not fully inside
      any window (rare: the overlap usually exceeds one statement);
    * **broken patterns** — incident *blocks* (a node statement plus its
      outgoing-edge statements, the unit a rule pattern spans) not fully
      inside any window.  High-degree nodes produce blocks longer than
      the overlap, and those are the ones that break — the §4.5 counts
      (6 / 11 / 6 in the paper) are at this granularity.
    """

    windows: list[Window]
    total_tokens: int
    window_size: int
    overlap: int
    broken_statements: list[Statement] = field(default_factory=list)
    broken_blocks: list[str] = field(default_factory=list)  # subject ids

    @property
    def window_count(self) -> int:
        return len(self.windows)

    @property
    def broken_statement_count(self) -> int:
        return len(self.broken_statements)

    @property
    def broken_pattern_count(self) -> int:
        return len(self.broken_blocks)


class SlidingWindowChunker:
    """Splits encoded statements into overlapping token windows."""

    def __init__(
        self,
        window_size: int = DEFAULT_WINDOW_SIZE,
        overlap: int = DEFAULT_OVERLAP,
    ) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if not 0 <= overlap < window_size:
            raise ValueError("overlap must satisfy 0 <= overlap < window_size")
        self.window_size = window_size
        self.overlap = overlap

    @property
    def step(self) -> int:
        return self.window_size - self.overlap

    # ------------------------------------------------------------------
    def chunk_statements(self, statements: list[Statement]) -> WindowSet:
        """Chunk a statement list, tracking which statements get broken."""
        text = "\n".join(statement.text for statement in statements)
        spans = token_spans(text)
        total = len(spans)
        ranges = statement_token_ranges(statements, spans)

        windows = self._build_windows(text, spans)
        broken = self._find_broken(statements, ranges, windows, total)
        broken_blocks = self._find_broken_blocks(statements, ranges, windows)
        return WindowSet(
            windows=windows,
            total_tokens=total,
            window_size=self.window_size,
            overlap=self.overlap,
            broken_statements=broken,
            broken_blocks=broken_blocks,
        )

    def chunk_text(self, text: str) -> WindowSet:
        """Chunk raw text (no statement accounting)."""
        spans = token_spans(text)
        windows = self._build_windows(text, spans)
        return WindowSet(
            windows=windows,
            total_tokens=len(spans),
            window_size=self.window_size,
            overlap=self.overlap,
        )

    # ------------------------------------------------------------------
    def _build_windows(
        self, text: str, spans: list[tuple[int, int]]
    ) -> list[Window]:
        total = len(spans)
        if total == 0:
            return []
        windows: list[Window] = []
        start = 0
        index = 0
        while True:
            end = min(start + self.window_size, total)
            char_start = spans[start][0]
            char_end = spans[end - 1][1]
            windows.append(
                Window(
                    index=index,
                    text=text[char_start:char_end],
                    start_token=start,
                    end_token=end,
                )
            )
            if end >= total:
                return windows
            start += self.step
            index += 1

    @staticmethod
    def _find_broken_blocks(
        statements: list[Statement],
        ranges: list[tuple[int, int]],
        windows: list[Window],
    ) -> list[str]:
        """Incident blocks (node + its edge statements) that no window
        fully contains — the §4.5 "broken pattern" count."""
        if not windows:
            return [s.subject_id for s in statements if s.kind == "node"]
        blocks: list[tuple[str, int, int]] = []
        current: tuple[str, int, int] | None = None
        for statement, (first, last) in zip(statements, ranges):
            if statement.kind == "node":
                if current is not None:
                    blocks.append(current)
                current = (statement.subject_id, first, last)
            elif current is not None:
                current = (current[0], current[1], last)
        if current is not None:
            blocks.append(current)
        broken: list[str] = []
        for subject_id, first, last in blocks:
            contained = any(
                window.start_token <= first and last < window.end_token
                for window in windows
            )
            if not contained:
                broken.append(subject_id)
        return broken

    @staticmethod
    def _find_broken(
        statements: list[Statement],
        ranges: list[tuple[int, int]],
        windows: list[Window],
        total_tokens: int,
    ) -> list[Statement]:
        if not windows:
            return list(statements)
        broken: list[Statement] = []
        for statement, (first, last) in zip(statements, ranges):
            contained = any(
                window.start_token <= first and last < window.end_token
                for window in windows
            )
            if not contained:
                broken.append(statement)
        return broken
