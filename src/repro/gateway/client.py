"""Stdlib HTTP client for the gateway front door.

:class:`GatewayClient` wraps the gateway's JSON endpoints in plain
method calls, with the two behaviours a well-mannered job client needs:

* **backpressure is typed** — a ``429``/``503`` raises
  :class:`GatewayRejectedError` carrying the server's shed reason and
  its ``Retry-After`` hint, so callers can back off precisely instead
  of guessing;
* **waiting is polling** — the gateway's result endpoint never blocks
  (a serving thread held open per pending client does not scale), so
  :meth:`wait` polls status with a caller-controlled interval and
  deadline.

Only :mod:`urllib.request` is used; the client works anywhere the
stdlib does, including inside CI smoke jobs.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Optional

__all__ = [
    "GatewayClient",
    "GatewayClientError",
    "GatewayError",
    "GatewayRejectedError",
]


class GatewayError(RuntimeError):
    """Base class for gateway client failures."""


class GatewayClientError(GatewayError):
    """The gateway refused the request as invalid (HTTP 4xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class GatewayRejectedError(GatewayError):
    """The gateway shed the request (429/503); back off and retry."""

    def __init__(
        self, status: int, reason: str, retry_after: float
    ) -> None:
        super().__init__(
            f"HTTP {status}: shed ({reason}); retry after {retry_after:.1f}s"
        )
        self.status = status
        self.reason = reason
        self.retry_after = retry_after


class GatewayClient:
    """Typed calls against one gateway base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        client_id: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> tuple[int, dict[str, Any]]:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/json")
        if self.client_id:
            request.add_header("X-Client-Id", self.client_id)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                parsed = json.loads(raw) if raw else {}
            except ValueError:
                parsed = {"error": raw.decode("utf-8", "replace")}
            if error.code in (429, 503):
                header = error.headers.get("Retry-After")
                retry_after = float(
                    parsed.get("retry_after") or header or 1.0
                )
                raise GatewayRejectedError(
                    error.code,
                    str(parsed.get("error") or "overloaded"),
                    retry_after,
                ) from None
            raise GatewayClientError(
                error.code, str(parsed.get("error") or error.reason)
            ) from None
        except urllib.error.URLError as error:
            raise GatewayError(
                f"gateway unreachable at {self.base_url}: {error.reason}"
            ) from None

    # ------------------------------------------------------------------
    def submit(
        self,
        dataset: str,
        model: str,
        method: str,
        prompt_mode: str,
        **knobs: object,
    ) -> dict[str, Any]:
        """POST one grid cell; returns the job snapshot (with job_id)."""
        payload: dict[str, object] = {
            "dataset": dataset, "model": model,
            "method": method, "prompt_mode": prompt_mode,
            **knobs,
        }
        if self.client_id and "client" not in payload:
            payload["client"] = self.client_id
        _, parsed = self._request("POST", "/jobs", payload)
        return parsed

    def status(self, job_id: str) -> dict[str, Any]:
        _, parsed = self._request("GET", f"/jobs/{job_id}")
        return parsed

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.2,
        sleep: Callable[[float], None] = time.sleep,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot.get("state") in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id[:12]} still {snapshot.get('state')} "
                    f"after {timeout}s"
                )
            sleep(poll_interval)

    def result(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.2,
        sleep: Callable[[float], None] = time.sleep,
    ) -> dict[str, Any]:
        """Wait for the job, then fetch ``{job_id, cell, source, run}``.

        The ``run`` value is the archive-format dict of
        :func:`repro.mining.persistence.run_to_dict` — byte-comparable
        against an in-process run serialised the same way.
        """
        final = self.wait(
            job_id, timeout=timeout,
            poll_interval=poll_interval, sleep=sleep,
        )
        if final.get("state") != "done":
            raise GatewayError(
                f"job {job_id[:12]} finished {final.get('state')}"
                + (f": {final.get('error')}" if final.get("error") else "")
            )
        _, parsed = self._request("GET", f"/jobs/{job_id}/result")
        return parsed

    def mine(
        self,
        dataset: str,
        model: str,
        method: str,
        prompt_mode: str,
        timeout: float = 300.0,
        **knobs: object,
    ) -> dict[str, Any]:
        """Submit-and-wait convenience mirroring ``MiningService.mine``."""
        job = self.submit(dataset, model, method, prompt_mode, **knobs)
        return self.result(str(job["job_id"]), timeout=timeout)

    def trace(self, job_id: str) -> dict[str, Any]:
        """The assembled fleet trace from ``GET /jobs/<id>/trace``.

        Returns the gateway's stitched span tree for the job — a single
        connected tree spanning the gateway and every worker process
        that touched the job.  Raises :class:`GatewayClientError` (404)
        when the gateway runs without tracing.
        """
        _, parsed = self._request("GET", f"/jobs/{job_id}/trace")
        return parsed

    def cancel(self, job_id: str) -> bool:
        _, parsed = self._request("POST", f"/jobs/{job_id}/cancel")
        return bool(parsed.get("cancelled"))

    def mutate(
        self, dataset: str, mutations: list[dict]
    ) -> dict[str, Any]:
        """POST one mutation batch to a watched dataset; returns the ack.

        See :mod:`repro.stream.mutations` for the wire format of each
        entry.  Requires a gateway started in watch mode.
        """
        payload: dict[str, object] = {"mutations": mutations}
        if self.client_id:
            payload["client"] = self.client_id
        _, parsed = self._request(
            "POST", f"/graphs/{dataset}/mutations", payload
        )
        return parsed

    def drift(self) -> dict[str, Any]:
        """Watch-mode drift telemetry from ``GET /drift``."""
        _, parsed = self._request("GET", "/drift")
        return parsed

    def stats(self) -> dict[str, Any]:
        _, parsed = self._request("GET", "/stats")
        return parsed

    def healthz(self) -> dict[str, Any]:
        _, parsed = self._request("GET", "/healthz")
        return parsed

    def metrics_text(self) -> str:
        """Raw Prometheus exposition text from ``/metrics``."""
        request = urllib.request.Request(self.base_url + "/metrics")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise GatewayClientError(error.code, error.reason) from None
        except urllib.error.URLError as error:
            raise GatewayError(
                f"gateway unreachable at {self.base_url}: {error.reason}"
            ) from None
