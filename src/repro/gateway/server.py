"""The gateway: HTTP front door over a multi-process worker fleet.

:class:`Gateway` composes the pieces of this package into one serving
process:

* **admission first** — every ``POST /jobs`` passes the
  :class:`~repro.gateway.admission.AdmissionController` *before* any
  validation or dataset work; shed requests leave as ``429``/``503``
  with a ``Retry-After`` hint and are never seen by a worker;
* **content-addressed identity** — the gateway computes the job id with
  the same :func:`~repro.service.jobs.cache_key` the in-process
  :class:`~repro.service.MiningService` uses, so an HTTP submission of
  a cell and an in-process ``mine()`` of the same cell share one id and
  one shared-cache entry;
* **dataset snapshots** — each served dataset is materialised once to
  ``<cache_dir>/.snapshots/<name>.json`` (see
  :mod:`repro.datasets.snapshot`); workers load the snapshot instead of
  regenerating the dataset, guaranteeing fleet-wide fingerprint
  agreement;
* **cache short-circuit** — with ``serve_from_cache`` (default) a job
  already present in the shared on-disk cache resolves at submit time
  without touching the fleet (``gateway.cache.hits{source=gateway}``);
  disabling it forces dispatch so the *worker-side* cross-process hit
  path (``source=worker``) is exercised;
* **graceful drain** — :meth:`drain` flips the door to refusing
  (``503 draining``), lets the dispatcher finish queued + in-flight
  work within a deadline, then stops the fleet.

The HTTP layer is stdlib :class:`~http.server.ThreadingHTTPServer` on
the shared :class:`~repro.obs.JsonRequestHandler` base — no framework,
same as the telemetry server.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional

from repro import obs
from repro.datasets.base import Dataset
from repro.datasets.registry import load
from repro.datasets.snapshot import save_dataset
from repro.gateway import protocol
from repro.gateway.admission import AdmissionController, AdmissionPolicy
from repro.gateway.dispatcher import (
    Dispatcher,
    DispatcherDraining,
    DispatchQueueFull,
    GatewayJob,
    GatewayJobState,
)
from repro.mining.persistence import run_to_dict
from repro.mining.result import MiningRun
from repro.obs.export import prometheus_text
from repro.obs.server import JsonRequestHandler
from repro.service.cache import ResultCache
from repro.service.jobs import cache_key, graph_fingerprint
from repro.stream.mutations import MutationError
from repro.stream.watch import WatchService

__all__ = [
    "Gateway",
    "GatewayJobFailed",
    "GatewayRejected",
    "UnknownDatasetError",
    "UnknownGatewayJobError",
]

#: reasons mapped to 503 instead of 429 — the server, not the client,
#: is the one that needs to change state before a retry can succeed
_UNAVAILABLE_REASONS = frozenset({"draining"})

#: terminal-job retention bound: the oldest resolved jobs are forgotten
#: once the table crosses this, so a long-lived gateway stays bounded
_MAX_JOBS = 4096


class GatewayRejected(RuntimeError):
    """Admission shed this request; carries the refusal decision."""

    def __init__(self, decision) -> None:
        super().__init__(
            f"request shed ({decision.reason}); "
            f"retry after {decision.retry_after:.1f}s"
        )
        self.decision = decision

    @property
    def status(self) -> int:
        return 503 if self.decision.reason in _UNAVAILABLE_REASONS else 429


class UnknownGatewayJobError(KeyError):
    """No job with that id was ever accepted by this gateway."""


class UnknownDatasetError(KeyError):
    """The dataset loader has no dataset by that name."""


class GatewayJobFailed(RuntimeError):
    """The awaited job finished FAILED or CANCELLED."""

    def __init__(self, job: GatewayJob) -> None:
        super().__init__(
            f"job {job.job_id[:12]} ({'/'.join(job.spec.cell())}) "
            f"finished {job.state.value}"
            + (f": {job.error}" if job.error else "")
        )
        self.job = job


class Gateway:
    """Admission + dispatcher + job table + HTTP server, one process.

    Usable without HTTP (tests drive :meth:`submit`/:meth:`result`
    directly) or as a server via :meth:`start` / ``with gateway:``.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_depth: int = 64,
        policy: AdmissionPolicy | None = None,
        defaults: protocol.SpecDefaults | None = None,
        loader: Callable[[str], Dataset] | None = None,
        max_retries: int = 3,
        retry_base_delay: float = 0.5,
        respawn_limit: int = 3,
        drain_timeout: float = 30.0,
        serve_from_cache: bool = True,
        python: str = sys.executable,
        clock: Callable[[], float] = time.monotonic,
        watch: bool = False,
        watch_model: str = "llama3",
        watch_prompt_mode: str = "zero_shot",
        watch_debounce: float = 0.5,
        cache_max_entries: int | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.host = host
        self.requested_port = port
        self.defaults = defaults or protocol.SpecDefaults()
        self.loader = loader or load
        self.serve_from_cache = serve_from_cache
        self.drain_timeout = drain_timeout
        self._clock = clock
        self.cache = ResultCache(self.cache_dir, max_entries=cache_max_entries)
        self.snapshot_dir = self.cache_dir / ".snapshots"
        self.watch_enabled = watch
        self.watch_model = watch_model
        self.watch_prompt_mode = watch_prompt_mode
        self.watch_debounce = watch_debounce
        self._watchers: dict[str, WatchService] = {}
        self.admission = AdmissionController(policy=policy, clock=clock)
        self.dispatcher = Dispatcher(
            cache_dir=self.cache_dir,
            workers=workers,
            queue_depth=queue_depth,
            max_retries=max_retries,
            retry_base_delay=retry_base_delay,
            respawn_limit=respawn_limit,
            drain_timeout=drain_timeout,
            python=python,
        )
        self._jobs: dict[str, GatewayJob] = {}
        self._jobs_lock = threading.Lock()
        self._datasets: dict[str, tuple[str, str]] = {}  # name -> (path, fp)
        self._dataset_objects: dict[str, Dataset] = {}
        self._dataset_lock = threading.Lock()
        self._draining = False
        self._started = False
        self.started_at = clock()
        self._httpd: _GatewayServer | None = None
        self._http_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Gateway":
        """Spawn the worker fleet and bind the HTTP server."""
        if self._started:
            return self
        self._started = True
        self.dispatcher.start()
        with self._dataset_lock:
            for watcher in self._watchers.values():
                watcher.start()
        httpd = _GatewayServer((self.host, self.requested_port), _Handler)
        httpd.gateway = self
        self._httpd = httpd
        self._http_thread = threading.Thread(
            target=httpd.serve_forever, name="gateway-http", daemon=True
        )
        self._http_thread.start()
        return self

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        with self._jobs_lock:
            return self._draining

    def drain(self, timeout: float | None = None) -> bool:
        """Refuse new jobs, finish accepted work, stop the fleet.

        Returns True when every accepted job reached a terminal state
        within the deadline.  The HTTP server stays up throughout (and
        after) so clients can still poll results of drained jobs.
        """
        with self._jobs_lock:
            self._draining = True
        obs.set_gauge("gateway.draining", 1)
        return self.dispatcher.drain(
            timeout if timeout is not None else self.drain_timeout
        )

    def stop(self) -> None:
        """Hard stop: drain with the configured deadline, close HTTP."""
        if not self.draining:
            self.drain(self.drain_timeout)
        with self._dataset_lock:
            watchers = list(self._watchers.values())
        for watcher in watchers:
            watcher.stop()
        self.dispatcher.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._http_thread is not None:
                self._http_thread.join(timeout=5)
            self._httpd = None
            self._http_thread = None

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def _dataset_entry(self, name: str) -> tuple[str, str]:
        """Snapshot path + graph fingerprint for one dataset, memoised.

        The first request for a dataset pays for generation, snapshot
        serialisation and fingerprinting; every later request (and every
        worker) reuses the snapshot file, so the whole fleet agrees on
        one graph and therefore one set of content addresses.
        """
        key = name.lower()
        with self._dataset_lock:
            entry = self._datasets.get(key)
            if entry is not None:
                return entry
            try:
                dataset = self.loader(key)
            except Exception as error:
                raise UnknownDatasetError(
                    f"dataset {key!r} is not servable: {error}"
                ) from error
            path = self.snapshot_dir / f"{key}.json"
            # embed the compiled CSR so every worker process adopts it
            # instead of recompiling the graph on its first job
            save_dataset(dataset, path, include_csr=True)
            entry = (str(path), graph_fingerprint(dataset.graph))
            self._datasets[key] = entry
            self._dataset_objects[key] = dataset
            return entry

    # ------------------------------------------------------------------
    # watch mode: live mutations + drift
    # ------------------------------------------------------------------
    def _watcher(self, name: str) -> WatchService:
        """The watch service for one dataset (created on first use)."""
        if not self.watch_enabled:
            raise UnknownDatasetError(
                "watch mode is disabled (start the gateway with watch=True)"
            )
        key = name.lower()
        self._dataset_entry(key)  # ensure the dataset exists + snapshot
        with self._dataset_lock:
            watcher = self._watchers.get(key)
            if watcher is None:
                watcher = WatchService(
                    self._dataset_objects[key],
                    model=self.watch_model,
                    prompt_mode=self.watch_prompt_mode,
                    debounce_seconds=self.watch_debounce,
                )
                self._watchers[key] = watcher
                if self._started:
                    watcher.start()
            return watcher

    def mutate(
        self, name: str, payload: object, client: str = "anonymous"
    ) -> dict[str, object]:
        """Apply one mutation batch to a watched dataset.

        Passes admission control like any other request, applies the
        batch through the dataset's :class:`WatchService` (one epoch
        bump), then re-snapshots the dataset to a **new, epoch-stamped
        path** and republishes it: workers key snapshot reloads on the
        path string, so later job submissions mine the mutated graph
        under its fresh content address — the grid becomes a live
        workload.
        """
        if self.draining:
            raise GatewayRejected(self.admission.shed(
                "draining", retry_after=self.drain_timeout,
            ))
        decision = self.admission.admit(
            client,
            queue_depth=self.dispatcher.backlog,
            inflight=self.dispatcher.inflight,
        )
        if not decision.admitted:
            raise GatewayRejected(decision)
        context = obs.parse_traceparent(
            payload.get("traceparent") if isinstance(payload, dict) else None
        )
        trace_id = context[0] if context else ""
        watcher = self._watcher(name)
        # raises MutationError on bad input
        ack = watcher.submit(payload, trace_id=trace_id)
        key = name.lower()
        with self._dataset_lock:
            dataset = self._dataset_objects[key]
            path = self.snapshot_dir / f"{key}.e{dataset.graph.epoch}.json"
            save_dataset(dataset, path, include_csr=True)
            self._datasets[key] = (
                str(path), graph_fingerprint(dataset.graph)
            )
            self._prune_snapshots(key, keep=8)
        obs.inc("gateway.mutations_accepted")
        ack["dataset"] = key
        ack["snapshot"] = path.name
        if trace_id:
            ack["trace_id"] = trace_id
        return ack

    def _prune_snapshots(self, key: str, keep: int) -> None:
        """Drop all but the newest ``keep`` epoch-stamped snapshots.

        Best-effort: a worker still holding an older path will fail its
        reload and the dispatcher's retry picks up the current one.
        """
        snapshots = sorted(
            self.snapshot_dir.glob(f"{key}.e*.json"),
            key=lambda p: p.stat().st_mtime,
        )
        for stale in snapshots[:-keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    def drift(self) -> dict[str, object]:
        """The ``/drift`` payload: per-dataset watch telemetry."""
        with self._dataset_lock:
            watchers = dict(self._watchers)
        return {
            "watch": self.watch_enabled,
            "datasets": {
                name: watcher.telemetry()
                for name, watcher in sorted(watchers.items())
            },
        }

    # ------------------------------------------------------------------
    # client API (the HTTP handler is a thin shim over these)
    # ------------------------------------------------------------------
    def submit(self, payload: dict, client: str = "anonymous") -> GatewayJob:
        """Admit, address and queue one submission.

        Raises :class:`~repro.gateway.protocol.ProtocolError` (400),
        :class:`GatewayRejected` (429/503) or
        :class:`UnknownDatasetError` (404).  Re-submitting a cell the
        gateway already tracks returns the existing job unchanged —
        submission is idempotent, exactly like the in-process service.
        """
        spec = protocol.parse_submit(payload, self.defaults)
        if self.draining:
            raise GatewayRejected(self.admission.shed(
                "draining", retry_after=self.drain_timeout,
            ))
        decision = self.admission.admit(
            client,
            queue_depth=self.dispatcher.backlog,
            inflight=self.dispatcher.inflight,
        )
        if not decision.admitted:
            raise GatewayRejected(decision)
        snapshot_path, fingerprint = self._dataset_entry(spec.dataset)
        job_id = cache_key(spec, fingerprint)
        with self._jobs_lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing
        # adopt the client's trace context when a valid traceparent came
        # in; otherwise mint a fresh trace.  No installed collector means
        # no tracing at all — the assembler would have nowhere to publish
        context = obs.parse_traceparent(payload.get("traceparent"))
        trace = None
        if obs.get_collector() is not None:
            trace = obs.TraceAssembler(
                trace_id=context[0] if context else None,
                clock=self._clock,
            )
        job = GatewayJob(
            job_id=job_id,
            spec=spec,
            snapshot_path=snapshot_path,
            client=client,
            submitted_at=self._clock(),
            trace_id=trace.trace_id if trace is not None else "",
            trace=trace,
        )
        if trace is not None:
            trace.begin(
                "gateway.job",
                job_id=job_id[:12],
                cell="/".join(spec.cell()),
                client=client,
                remote_parent=context[1] if context else None,
            )
        if self.serve_from_cache:
            run = self.cache.get(job_id)
            if run is not None:
                # another process (or a past run) already mined this
                # cell — answer from the shared cache without touching
                # the fleet
                job.state = GatewayJobState.DONE
                job.source = "cache"
                job.cache_hit = True
                job.rules = run.rule_count
                job.computed_id = job_id
                job.finished_at = self._clock()
                if trace is not None:
                    trace.event("gateway.cache", source="gateway")
                    trace.finish(state=job.state.value, source=job.source)
                job.done.set()
                self._remember(job)
                obs.inc("gateway.cache.hits", source="gateway")
                obs.inc("gateway.jobs_completed", ok=True, cache_hit=True)
                return job
            obs.inc("gateway.cache.misses", source="gateway")
        self._remember(job)
        try:
            self.dispatcher.submit(job)
        except DispatchQueueFull:
            self._forget(job_id)
            raise GatewayRejected(self.admission.shed("queue_full"))
        except DispatcherDraining:
            self._forget(job_id)
            raise GatewayRejected(self.admission.shed(
                "draining", retry_after=self.drain_timeout,
            ))
        obs.inc("gateway.jobs_accepted")
        return job

    def _remember(self, job: GatewayJob) -> None:
        with self._jobs_lock:
            self._jobs[job.job_id] = job
            if len(self._jobs) > _MAX_JOBS:
                for job_id, old in list(self._jobs.items()):
                    if len(self._jobs) <= _MAX_JOBS:
                        break
                    if old.state.terminal:
                        del self._jobs[job_id]

    def _forget(self, job_id: str) -> None:
        with self._jobs_lock:
            self._jobs.pop(job_id, None)

    def _job(self, job_id: str) -> GatewayJob:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownGatewayJobError(job_id)
        return job

    def status(self, job_id: str) -> dict[str, object]:
        return self._job(job_id).snapshot()

    def trace_payload(self, job_id: str) -> dict[str, object] | None:
        """The job's assembled span tree, or ``None`` when the gateway
        runs without an installed collector (tracing disabled)."""
        job = self._job(job_id)
        if job.trace is None:
            return None
        payload = job.trace.to_dict()
        payload["job_id"] = job.job_id
        payload["state"] = job.state.value
        return payload

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> MiningRun:
        """Block until the job finishes, then load its run.

        The run always comes from the shared cache: for dispatched jobs
        the worker process stored it there, for cache-served jobs it was
        there to begin with — the gateway never holds result payloads.
        """
        job = self._job(job_id)
        if not job.done.wait(timeout=timeout):
            raise TimeoutError(
                f"job {job_id[:12]} still {job.state.value} after {timeout}s"
            )
        if job.state is not GatewayJobState.DONE:
            raise GatewayJobFailed(job)
        run = self.cache.get(job_id)
        if run is None:
            raise GatewayJobFailed(job)
        return run

    def cancel(self, job_id: str) -> bool:
        job = self._job(job_id)
        return self.dispatcher.cancel(job.job_id)

    def stats(self) -> dict[str, object]:
        with self._jobs_lock:
            jobs = list(self._jobs.values())
            draining = self._draining
        by_state = {state.value: 0 for state in GatewayJobState}
        for job in jobs:
            by_state[job.state.value] += 1
        cache = self.cache.stats
        return {
            "uptime_seconds": self._clock() - self.started_at,
            "draining": draining,
            "jobs": by_state,
            "tracked": len(jobs),
            "admission": self.admission.snapshot(),
            "dispatcher": self.dispatcher.stats(),
            "cache": {
                "entries": len(self.cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "stores": cache.stores,
                "evictions": cache.evictions,
            },
            "datasets": sorted(self._datasets),
            "watch": {
                "enabled": self.watch_enabled,
                "watched": sorted(self._watchers),
            },
        }


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class _GatewayServer(ThreadingHTTPServer):
    daemon_threads = True
    gateway: Gateway


def _retry_after_header(retry_after: float) -> dict[str, str]:
    return {"Retry-After": str(max(1, math.ceil(retry_after)))}


class _Handler(JsonRequestHandler):
    """Routes; all state lives on ``self.server.gateway``."""

    server_version = "repro-gateway/1"

    @property
    def gateway(self) -> Gateway:
        return self.server.gateway

    def _client_id(self, payload: dict) -> str:
        client = payload.get("client") or self.headers.get("X-Client-Id")
        if isinstance(client, str) and client.strip():
            return client.strip()
        return self.client_address[0]

    # ------------------------------------------------------------------
    def _dispatch(
        self, method: str, endpoint: str, handler: Callable[[], None]
    ) -> None:
        """Run one route with RED accounting and a structured access log.

        Every request gets a ``gateway.http.requests`` count (by method,
        endpoint *template* and status — raw paths would explode label
        cardinality), a ``gateway.http.request_seconds`` observation and
        one JSON log line on stderr carrying the same correlation id the
        response's ``X-Request-Id`` header does.
        """
        clock = self.gateway._clock
        started = clock()
        try:
            handler()
        except Exception as error:  # noqa - serving must survive any request
            self._send_json(500, {"error": str(error)})
        elapsed = clock() - started
        status = self._last_status or 0
        obs.inc(
            "gateway.http.requests",
            method=method, endpoint=endpoint, status=status,
        )
        obs.observe(
            "gateway.http.request_seconds", elapsed, endpoint=endpoint,
        )
        print(json.dumps({
            "log": "gateway.http",
            "request_id": self.correlation_id(),
            "method": method,
            "endpoint": endpoint,
            "path": self.path,
            "status": status,
            "seconds": round(elapsed, 6),
        }, separators=(",", ":")), file=sys.stderr)

    def _route_post(
        self, path: str
    ) -> tuple[str, Callable[[], None]] | None:
        if path == "/jobs":
            return "/jobs", self._submit
        parts = path.strip("/").split("/")
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            return "/jobs/{id}/cancel", lambda: self._cancel(parts[1])
        if (
            len(parts) == 3
            and parts[0] == "graphs"
            and parts[2] == "mutations"
        ):
            return "/graphs/{name}/mutations", lambda: self._mutate(parts[1])
        return None

    def _route_get(
        self, path: str
    ) -> tuple[str, Callable[[], None]] | None:
        if path == "/stats":
            return "/stats", lambda: self._send_json(
                200, self.gateway.stats()
            )
        if path == "/healthz":
            return "/healthz", self._healthz
        if path == "/metrics":
            return "/metrics", self._metrics
        if path == "/drift":
            return "/drift", lambda: self._send_json(
                200, self.gateway.drift()
            )
        parts = path.strip("/").split("/")
        if len(parts) == 2 and parts[0] == "jobs":
            return "/jobs/{id}", lambda: self._status(parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            return "/jobs/{id}/result", lambda: self._result(parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
            return "/jobs/{id}/trace", lambda: self._trace(parts[1])
        return None

    def do_POST(self) -> None:  # noqa - http.server naming convention
        path = self.path.split("?", 1)[0].rstrip("/")
        route = self._route_post(path)
        if route is None:
            self._dispatch(
                "POST", "<unmatched>",
                lambda: self._send_json(
                    404, {"error": f"no POST route {path!r}"}
                ),
            )
            return
        self._dispatch("POST", route[0], route[1])

    def do_GET(self) -> None:  # noqa - http.server naming convention
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route = self._route_get(path)
        if route is None:
            self._dispatch(
                "GET", "<unmatched>",
                lambda: self._send_json(404, {
                    "error": "not found",
                    "endpoints": [
                        "POST /jobs", "GET /jobs/<id>",
                        "GET /jobs/<id>/result",
                        "GET /jobs/<id>/trace",
                        "POST /jobs/<id>/cancel",
                        "POST /graphs/<name>/mutations",
                        "GET /drift",
                        "GET /stats", "GET /healthz", "GET /metrics",
                    ],
                }),
            )
            return
        self._dispatch("GET", route[0], route[1])

    # ------------------------------------------------------------------
    def _submit(self) -> None:
        try:
            payload = self._read_json_body()
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        client = self._client_id(payload)
        try:
            job = self.gateway.submit(payload, client=client)
        except protocol.ProtocolError as error:
            self._send_json(400, {"error": str(error)})
            return
        except UnknownDatasetError as error:
            self._send_json(404, {"error": str(error.args[0])})
            return
        except GatewayRejected as error:
            decision = error.decision
            self._send_json(
                error.status,
                {
                    "error": decision.reason,
                    "retry_after": decision.retry_after,
                },
                headers=_retry_after_header(decision.retry_after),
            )
            return
        status = 200 if job.state.terminal else 202
        self._send_json(status, job.snapshot())

    def _status(self, job_id: str) -> None:
        try:
            self._send_json(200, self.gateway.status(job_id))
        except UnknownGatewayJobError:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})

    def _result(self, job_id: str) -> None:
        try:
            job = self.gateway._job(job_id)
        except UnknownGatewayJobError:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        if not job.state.terminal:
            self._send_json(202, job.snapshot())
            return
        try:
            run = self.gateway.result(job_id, timeout=0)
        except (GatewayJobFailed, TimeoutError):
            self._send_json(500, job.snapshot())
            return
        self._send_json(200, {
            "job_id": job_id,
            "cell": list(job.spec.cell()),
            "source": job.source,
            "run": run_to_dict(run),
        })

    def _mutate(self, name: str) -> None:
        try:
            payload = self._read_json_body()
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        client = self._client_id(
            payload if isinstance(payload, dict) else {}
        )
        try:
            ack = self.gateway.mutate(name, payload, client=client)
        except MutationError as error:
            self._send_json(400, {"error": str(error)})
            return
        except UnknownDatasetError as error:
            self._send_json(404, {"error": str(error.args[0])})
            return
        except GatewayRejected as error:
            decision = error.decision
            self._send_json(
                error.status,
                {
                    "error": decision.reason,
                    "retry_after": decision.retry_after,
                },
                headers=_retry_after_header(decision.retry_after),
            )
            return
        self._send_json(200, ack)

    def _trace(self, job_id: str) -> None:
        try:
            payload = self.gateway.trace_payload(job_id)
        except UnknownGatewayJobError:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        if payload is None:
            self._send_json(404, {
                "error": (
                    f"no trace recorded for job {job_id!r} "
                    "(gateway has no collector installed)"
                ),
            })
            return
        self._send_json(200, payload)

    def _cancel(self, job_id: str) -> None:
        try:
            cancelled = self.gateway.cancel(job_id)
        except UnknownGatewayJobError:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
            return
        self._send_json(200, {"job_id": job_id, "cancelled": cancelled})

    def _healthz(self) -> None:
        gateway = self.gateway
        stats = gateway.dispatcher.stats()
        alive = sum(
            1 for worker in stats["workers"] if worker["alive"]
        )
        self._send_json(200, {
            "status": "draining" if gateway.draining else "ok",
            "uptime_seconds": gateway._clock() - gateway.started_at,
            "workers_alive": alive,
        })

    def _metrics(self) -> None:
        collector = obs.get_collector()
        if collector is None:
            self._send_json(503, {"error": "no metrics registry installed"})
            return
        self._send(
            200,
            prometheus_text(collector.metrics).encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )
