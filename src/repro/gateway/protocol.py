"""Wire protocol of the serving front door.

Two small JSON dialects live here:

* the **HTTP submit payload** — what a client POSTs to ``/jobs``.
  :func:`parse_submit` validates it against the grid vocabulary
  (datasets are open-ended, the loader decides; models, methods and
  prompt modes are closed sets) and produces the same
  :class:`~repro.service.jobs.JobSpec` the in-process service uses, so
  a job submitted over HTTP gets the *identical* content address as an
  in-process ``mine()`` of the same cell;
* the **worker line protocol** — newline-delimited JSON objects
  exchanged with worker processes over stdin/stdout.  The dispatcher
  sends ``job``/``shutdown`` ops; workers answer with ``ready``,
  ``done`` and ``bye`` events.

Keeping both in one module (with a version tag on every worker line)
means a protocol drift between gateway and worker fails loudly at
decode time instead of silently mis-running jobs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.llm.profiles import MODEL_NAMES
from repro.mining.pipeline import PROMPT_MODES
from repro.mining.runner import METHODS
from repro.service.jobs import JobSpec

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SpecDefaults",
    "decode_line",
    "done_event",
    "encode_line",
    "job_message",
    "parse_submit",
    "ready_event",
    "shutdown_message",
    "spec_from_payload",
    "spec_to_payload",
]

#: v2 added distributed-trace context: ``job`` ops carry a ``trace``
#: (traceparent) field and ``done`` events ship the worker's completed
#: span tree (``trace`` + ``spans``).  The version check stays strict —
#: a v1 worker paired with a v2 gateway fails loudly at decode time.
PROTOCOL_VERSION = 2

#: integer knobs a submit payload may override, with bounds that keep a
#: hostile payload from wedging a worker (0-token windows, giant top-k)
_INT_OVERRIDES = {
    "base_seed": (0, 2**31),
    "window_size": (64, 1_000_000),
    "overlap": (0, 100_000),
    "rag_chunk_tokens": (16, 100_000),
    "rag_top_k": (1, 4096),
}


class ProtocolError(ValueError):
    """A payload violates the wire protocol; maps to HTTP 400."""


@dataclass(frozen=True)
class SpecDefaults:
    """Gateway-wide defaults for the overridable pipeline knobs."""

    base_seed: int = 0
    window_size: int = 8000
    overlap: int = 500
    rag_chunk_tokens: int = 512
    rag_top_k: int = 16


def _require_str(payload: Mapping[str, Any], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"field {field!r} must be a non-empty string")
    return value.strip()


def parse_submit(
    payload: Mapping[str, Any], defaults: SpecDefaults | None = None
) -> JobSpec:
    """Validate a ``POST /jobs`` body into a :class:`JobSpec`.

    Raises :class:`ProtocolError` with a client-actionable message on
    any violation; never partially applies a payload.
    """
    defaults = defaults or SpecDefaults()
    if not isinstance(payload, Mapping):
        raise ProtocolError("submit payload must be a JSON object")
    dataset = _require_str(payload, "dataset").lower()
    model = _require_str(payload, "model").lower()
    method = _require_str(payload, "method")
    prompt_mode = _require_str(payload, "prompt_mode")
    if model not in MODEL_NAMES:
        raise ProtocolError(
            f"unknown model {model!r}; one of {sorted(MODEL_NAMES)}"
        )
    if method not in METHODS:
        raise ProtocolError(
            f"unknown method {method!r}; one of {sorted(METHODS)}"
        )
    if prompt_mode not in PROMPT_MODES:
        raise ProtocolError(
            f"unknown prompt mode {prompt_mode!r}; "
            f"one of {sorted(PROMPT_MODES)}"
        )
    knobs: dict[str, int] = {}
    for field, (low, high) in _INT_OVERRIDES.items():
        value = payload.get(field, getattr(defaults, field))
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(f"field {field!r} must be an integer")
        if not low <= value <= high:
            raise ProtocolError(
                f"field {field!r} must be in [{low}, {high}], got {value}"
            )
        knobs[field] = value
    traceparent = payload.get("traceparent")
    if traceparent is not None and not isinstance(traceparent, str):
        raise ProtocolError("field 'traceparent' must be a string")
    known = {"dataset", "model", "method", "prompt_mode", "client",
             "priority", "traceparent", *_INT_OVERRIDES}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(f"unknown fields: {sorted(unknown)}")
    return JobSpec(
        dataset=dataset, model=model, method=method,
        prompt_mode=prompt_mode, **knobs,
    )


def spec_to_payload(spec: JobSpec) -> dict[str, Any]:
    """The full config dict shipped to workers (already canonical)."""
    return spec.config_dict()


def spec_from_payload(payload: Mapping[str, Any]) -> JobSpec:
    """Rebuild a :class:`JobSpec` on the worker side, re-validated."""
    return parse_submit(payload)


# ----------------------------------------------------------------------
# worker line protocol
# ----------------------------------------------------------------------
def encode_line(message: Mapping[str, Any]) -> str:
    """One protocol message as a newline-terminated JSON line."""
    record = {"v": PROTOCOL_VERSION, **message}
    return json.dumps(record, separators=(",", ":")) + "\n"


def decode_line(line: str) -> dict[str, Any]:
    """Parse and version-check one protocol line."""
    try:
        message = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"undecodable protocol line: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("protocol line must be a JSON object")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"expected {PROTOCOL_VERSION}"
        )
    return message


def job_message(
    job_id: str,
    spec: JobSpec,
    snapshot_path: str,
    traceparent: str | None = None,
) -> dict[str, Any]:
    message = {
        "op": "job",
        "job_id": job_id,
        "snapshot": snapshot_path,
        "spec": spec_to_payload(spec),
    }
    if traceparent:
        message["trace"] = traceparent
    return message


def shutdown_message() -> dict[str, Any]:
    return {"op": "shutdown"}


def ready_event(worker_id: str, pid: int) -> dict[str, Any]:
    return {"event": "ready", "worker_id": worker_id, "pid": pid}


def done_event(
    job_id: str,
    ok: bool,
    *,
    cache_hit: bool = False,
    attempts: int = 0,
    retries: int = 0,
    rules: int = 0,
    run_seconds: float = 0.0,
    computed_id: str = "",
    error: str | None = None,
    trace: str | None = None,
    spans: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    event = {
        "event": "done",
        "job_id": job_id,
        "ok": ok,
        "cache_hit": cache_hit,
        "attempts": attempts,
        "retries": retries,
        "rules": rules,
        "run_seconds": run_seconds,
        "computed_id": computed_id,
        "error": error,
    }
    if trace:
        event["trace"] = trace
    if spans is not None:
        event["spans"] = spans
    return event
