"""repro.gateway — the HTTP serving front door for rule mining.

One gateway process owns:

* an **admission controller** (per-client token buckets, bounded
  in-flight work, queue-depth backpressure) that sheds overload with
  ``429`` + ``Retry-After`` before any work is queued;
* a **dispatcher** over N worker *processes* (each a
  ``python -m repro.gateway.worker`` subprocess running one
  single-threaded :class:`~repro.service.MiningService`);
* the **shared on-disk result cache** — job ids are the same content
  addresses the in-process service computes, so HTTP submissions,
  in-process ``mine()`` calls and sibling gateway processes all
  deduplicate against one another.

Typical serving setup (the CLI's ``serve --port`` does exactly this)::

    from repro.gateway import Gateway, GatewayClient

    with Gateway(cache_dir="~/.repro-cache", workers=4, port=8080) as gw:
        client = GatewayClient(gw.url)
        job = client.submit("cybersecurity", "llama3", "rag", "zero_shot")
        payload = client.result(job["job_id"])   # archive-format run dict
"""

from repro.gateway.admission import (
    AdmissionController,
    AdmissionPolicy,
    Decision,
    TokenBucket,
)
from repro.gateway.client import (
    GatewayClient,
    GatewayClientError,
    GatewayError,
    GatewayRejectedError,
)
from repro.gateway.dispatcher import (
    Dispatcher,
    DispatcherDraining,
    DispatchQueueFull,
    GatewayJob,
    GatewayJobState,
)
from repro.gateway.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SpecDefaults,
    parse_submit,
)
from repro.gateway.server import (
    Gateway,
    GatewayJobFailed,
    GatewayRejected,
    UnknownDatasetError,
    UnknownGatewayJobError,
)

# NOTE: repro.gateway.worker is deliberately not imported here — it is
# the ``python -m repro.gateway.worker`` subprocess entrypoint, and
# importing it at package-init time would re-execute it under runpy.

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "Decision",
    "Dispatcher",
    "DispatcherDraining",
    "DispatchQueueFull",
    "Gateway",
    "GatewayClient",
    "GatewayClientError",
    "GatewayError",
    "GatewayJob",
    "GatewayJobFailed",
    "GatewayJobState",
    "GatewayRejected",
    "GatewayRejectedError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SpecDefaults",
    "TokenBucket",
    "UnknownDatasetError",
    "UnknownGatewayJobError",
    "parse_submit",
]
