"""Worker process entrypoint: ``python -m repro.gateway.worker``.

One worker is one OS process owning one single-threaded
:class:`~repro.service.MiningService` pointed at the *shared* on-disk
result cache.  It speaks the line protocol of
:mod:`repro.gateway.protocol` over stdin/stdout:

* reads ``job`` ops — each names a dataset snapshot file (written by
  the gateway via :mod:`repro.datasets.snapshot`), the full pipeline
  spec and the gateway's content-addressed job id;
* loads the snapshot (cached per dataset name), runs the job through
  the existing MiningService machinery (retry/backoff, disk cache), and
  emits a ``done`` event.  A cell another worker process already mined
  lands as a **cross-process cache hit** — the service finds the entry
  in the shared cache and never touches a pipeline;
* exits cleanly on a ``shutdown`` op, stdin EOF, or SIGTERM/SIGINT —
  all three drain the in-flight job with a deadline before exiting.

Stdout carries protocol lines only; anything human-readable goes to
stderr.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from pathlib import Path
from typing import IO

from repro.datasets.base import Dataset
from repro.datasets.snapshot import load_dataset
from repro.gateway import protocol
from repro.obs import distributed
from repro.obs import trace as obs_trace
from repro.service import MiningService, RetryPolicy

__all__ = ["GatewayWorker", "main"]


class _DrainRequested(Exception):
    """Raised out of a signal handler to unwind into the drain path."""


class GatewayWorker:
    """The protocol loop around one in-process MiningService."""

    def __init__(
        self,
        cache_dir: str | Path,
        worker_id: str = "w0",
        max_retries: int = 3,
        retry_base_delay: float = 0.5,
        drain_timeout: float = 30.0,
        stdin: IO[str] | None = None,
        stdout: IO[str] | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.drain_timeout = drain_timeout
        self._stdin = stdin if stdin is not None else sys.stdin
        self._stdout = stdout if stdout is not None else sys.stdout
        self._cache_dir = Path(cache_dir)
        self._retry_policy = RetryPolicy(
            max_retries=max_retries, base_delay=retry_base_delay
        )
        self._snapshots: dict[str, str] = {}
        self._datasets: dict[str, Dataset] = {}
        self._service: MiningService | None = None
        self.jobs_handled = 0

    # ------------------------------------------------------------------
    def _load(self, name: str) -> Dataset:
        """MiningService loader: datasets come from snapshot files."""
        try:
            return self._datasets[name.lower()]
        except KeyError:
            raise KeyError(
                f"worker has no snapshot for dataset {name!r}"
            ) from None

    def _ensure_service(self) -> MiningService:
        if self._service is None:
            self._service = MiningService(
                cache_dir=self._cache_dir,
                workers=1,
                loader=self._load,
                retry_policy=self._retry_policy,
            )
        return self._service

    def _ensure_snapshot(self, name: str, path: str) -> None:
        """Load (or reload) the dataset behind ``name``.

        A changed snapshot path for a known name means the gateway
        regenerated the dataset: the old MiningService caches (contexts,
        fingerprints, warmed pipelines) are stale, so the whole service
        is rebuilt rather than risk mining against the old graph.
        """
        name = name.lower()
        if self._snapshots.get(name) == path:
            return
        dataset = load_dataset(path)
        if name in self._snapshots and self._service is not None:
            self._service.shutdown(wait=True, timeout=self.drain_timeout)
            self._service = None
        self._snapshots[name] = path
        self._datasets[name] = dataset

    # ------------------------------------------------------------------
    def _emit(self, message: dict) -> None:
        self._stdout.write(protocol.encode_line(message))
        self._stdout.flush()

    def _begin_trace(
        self, message: dict, job_id: str
    ) -> tuple[object, object, str] | None:
        """Adopt the gateway's trace context for one job, if present.

        Installs a fresh per-job collector and opens the worker-side
        root span; every service/pipeline span the mining run records
        nests under it via the existing in-process propagation.  Returns
        ``(collector, root, trace_id)`` plus remembers the previously
        installed collector for restoration.
        """
        context = distributed.parse_traceparent(message.get("trace"))
        if context is None:
            return None
        trace_id, parent_span = context
        self._previous_collector = obs_trace.get_collector()
        collector = obs_trace.TraceCollector()
        obs_trace.install(collector)
        root = collector.start_span("worker.job", {
            "trace_id": trace_id,
            "remote_parent": parent_span,
            "job_id": job_id[:12],
            "worker": self.worker_id,
            "pid": os.getpid(),
        })
        return collector, root, trace_id

    def _end_trace(
        self, adopted: tuple[object, object, str] | None,
        error: str | None = None,
    ) -> tuple[str | None, dict | None]:
        """Close the job's root span, restore the previous collector and
        serialise the finished tree for the ``done`` event."""
        if adopted is None:
            return None, None
        collector, root, trace_id = adopted
        if error is not None:
            root.attributes.setdefault("error", error)
        collector.end_span(root)
        previous = getattr(self, "_previous_collector", None)
        if previous is not None:
            obs_trace.install(previous)
        else:
            obs_trace.uninstall()
        self._previous_collector = None
        return trace_id, distributed.span_to_wire(root)

    def handle_job(self, message: dict) -> None:
        job_id = str(message.get("job_id", ""))
        started = time.monotonic()
        adopted = self._begin_trace(message, job_id)
        try:
            spec = protocol.spec_from_payload(message["spec"])
            self._ensure_snapshot(spec.dataset, str(message["snapshot"]))
            service = self._ensure_service()
            overrides = {
                "base_seed": spec.base_seed,
                "window_size": spec.window_size,
                "overlap": spec.overlap,
                "rag_chunk_tokens": spec.rag_chunk_tokens,
                "rag_top_k": spec.rag_top_k,
            }
            trace_tags = (
                {"trace_id": adopted[2]} if adopted is not None else None
            )
            local_id = service.submit(
                spec.dataset, spec.model, spec.method, spec.prompt_mode,
                trace_tags=trace_tags,
                **overrides,
            )
            run = service.result(local_id)
            status = service.status(local_id)
        except Exception as error:
            # JobFailedError, snapshot errors, protocol drift — anything
            # job-scoped becomes a failed done event, never a dead worker
            reason = f"{type(error).__name__}: {error}"
            trace_id, spans = self._end_trace(adopted, error=reason)
            self._emit(protocol.done_event(
                job_id, ok=False,
                run_seconds=time.monotonic() - started,
                error=reason,
                trace=trace_id, spans=spans,
            ))
        else:
            trace_id, spans = self._end_trace(adopted)
            self._emit(protocol.done_event(
                job_id, ok=True,
                cache_hit=bool(status["cache_hit"]),
                attempts=int(status["attempts"]),
                retries=int(status["retries"]),
                rules=run.rule_count,
                run_seconds=time.monotonic() - started,
                computed_id=local_id,
                trace=trace_id, spans=spans,
            ))
        finally:
            self.jobs_handled += 1

    # ------------------------------------------------------------------
    def _install_signal_handlers(self) -> None:
        def handler(signum: int, frame: object) -> None:
            raise _DrainRequested()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, handler)
            except ValueError:  # not the main thread (tests)
                return

    def run(self) -> int:
        """Protocol loop: read ops until shutdown/EOF/signal, drain."""
        self._install_signal_handlers()
        self._emit(protocol.ready_event(self.worker_id, os.getpid()))
        exit_code = 0
        try:
            while True:
                line = self._stdin.readline()
                if not line:          # gateway closed stdin: drain
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = protocol.decode_line(line)
                except protocol.ProtocolError as error:
                    print(
                        f"worker {self.worker_id}: {error}",
                        file=sys.stderr,
                    )
                    exit_code = 2
                    break
                op = message.get("op")
                if op == "shutdown":
                    break
                if op == "job":
                    self.handle_job(message)
                # unknown ops are skipped: a newer gateway may send
                # advisory ops an older worker can safely ignore
        except _DrainRequested:
            pass
        finally:
            if self._service is not None:
                self._service.shutdown(wait=True, timeout=self.drain_timeout)
            self._emit({
                "event": "bye",
                "worker_id": self.worker_id,
                "jobs": self.jobs_handled,
            })
        return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway.worker",
        description=(
            "Gateway worker process: drains mining jobs from stdin "
            "(JSON lines), stores results in the shared on-disk cache, "
            "reports completions on stdout."
        ),
    )
    parser.add_argument("--cache-dir", required=True, metavar="PATH")
    parser.add_argument("--worker-id", default="w0")
    parser.add_argument("--max-retries", type=int, default=3)
    parser.add_argument("--retry-base-delay", type=float, default=0.5)
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="deadline for the in-flight job on shutdown (seconds)",
    )
    args = parser.parse_args(argv)
    worker = GatewayWorker(
        cache_dir=args.cache_dir,
        worker_id=args.worker_id,
        max_retries=args.max_retries,
        retry_base_delay=args.retry_base_delay,
        drain_timeout=args.drain_timeout,
    )
    return worker.run()


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(main())
