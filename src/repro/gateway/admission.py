"""Admission control: decide *before* work is queued, shed with a hint.

A front door serving heavy traffic protects itself in layers, each
cheap enough to run on every request:

1. **per-client token buckets** — a client gets ``rate`` jobs/second
   with bursts up to ``burst``; beyond that the request is shed with a
   ``Retry-After`` computed from the bucket's actual refill time;
2. **bounded in-flight jobs** — accepted-but-unfinished jobs are capped
   so a slow fleet cannot accumulate unbounded promised work;
3. **queue-depth backpressure** — once the dispatch backlog crosses the
   configured high-water mark, new work is shed immediately instead of
   joining a queue it would time out in.

Shed requests never reach the dispatcher or a worker process; every
decision is counted (``gateway.admission.*`` via :mod:`repro.obs`, plus
always-on local totals for ``/stats``).  The clock is injectable so
tests drive bucket refill deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "Decision",
    "TokenBucket",
]

#: shed reasons, fixed vocabulary (bounded metric label cardinality)
REASONS = ("rate_limit", "inflight_limit", "queue_full", "draining")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_acquire`` never blocks; on refusal it reports how long until
    the requested amount would be available — the ``Retry-After`` hint.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0 or burst <= 0:
            raise ValueError("rate must be >= 0 and burst > 0")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, amount: float = 1.0) -> tuple[bool, float]:
        """Take ``amount`` tokens; returns ``(ok, retry_after_seconds)``."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= amount:
                self._tokens -= amount
                return True, 0.0
            deficit = amount - self._tokens
            if self.rate <= 0:
                return False, float("inf")
            return False, deficit / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits enforced at the front door."""

    rate_per_client: float = 50.0     # sustained jobs/second per client
    burst_per_client: float = 100.0   # instantaneous burst per client
    max_inflight: int = 256           # accepted-but-unfinished jobs
    max_queue_depth: int = 128        # dispatch backlog high-water mark
    max_clients: int = 1024           # bucket table bound (LRU-evicted)
    retry_after_floor: float = 1.0    # minimum Retry-After hint


@dataclass(frozen=True)
class Decision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = "ok"
    retry_after: float = 0.0


@dataclass
class AdmissionStats:
    """Always-on accounting, independent of the obs collector."""

    admitted: int = 0
    shed: dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in REASONS}
    )

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` to each submission."""

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or AdmissionPolicy()
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._last_seen: dict[str, float] = {}
        self._lock = threading.Lock()
        self.stats = AdmissionStats()

    # ------------------------------------------------------------------
    def _bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.policy.max_clients:
                    oldest = min(self._last_seen, key=self._last_seen.get)
                    self._buckets.pop(oldest, None)
                    self._last_seen.pop(oldest, None)
                bucket = TokenBucket(
                    self.policy.rate_per_client,
                    self.policy.burst_per_client,
                    clock=self._clock,
                )
                self._buckets[client] = bucket
            self._last_seen[client] = self._clock()
            obs.set_gauge("gateway.admission.clients", len(self._buckets))
            return bucket

    def _hint(self, seconds: float) -> float:
        if seconds == float("inf"):
            return max(self.policy.retry_after_floor, 60.0)
        return max(self.policy.retry_after_floor, seconds)

    def shed(self, reason: str, retry_after: float | None = None) -> Decision:
        """Record one shed request and produce its refusal decision."""
        hint = self._hint(
            retry_after if retry_after is not None
            else self.policy.retry_after_floor
        )
        with self._lock:
            self.stats.shed[reason] = self.stats.shed.get(reason, 0) + 1
        obs.inc("gateway.admission.shed", reason=reason)
        return Decision(admitted=False, reason=reason, retry_after=hint)

    def admit(
        self, client: str, queue_depth: int, inflight: int
    ) -> Decision:
        """One admission check; cheap enough for every request.

        Backpressure limits run before the rate limiter so a saturated
        fleet does not silently burn the client's token budget on
        requests that would be shed anyway.
        """
        policy = self.policy
        if queue_depth >= policy.max_queue_depth:
            return self.shed("queue_full")
        if inflight >= policy.max_inflight:
            return self.shed("inflight_limit")
        ok, retry_after = self._bucket(client).try_acquire()
        if not ok:
            return self.shed("rate_limit", retry_after)
        with self._lock:
            self.stats.admitted += 1
        obs.inc("gateway.admission.admitted")
        return Decision(admitted=True)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Plain-dict accounting for ``/stats``."""
        with self._lock:
            return {
                "admitted": self.stats.admitted,
                "shed": dict(self.stats.shed),
                "shed_total": self.stats.shed_total,
                "clients": len(self._buckets),
                "policy": {
                    "rate_per_client": self.policy.rate_per_client,
                    "burst_per_client": self.policy.burst_per_client,
                    "max_inflight": self.policy.max_inflight,
                    "max_queue_depth": self.policy.max_queue_depth,
                },
            }
