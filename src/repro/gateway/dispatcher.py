"""Dispatcher: the multi-process worker fleet behind the gateway.

Owns N worker *processes* (spawned from
:mod:`repro.gateway.worker`), a bounded FIFO backlog of accepted jobs,
and the bookkeeping that turns worker ``done`` events back into
resolved :class:`GatewayJob` records.

Robustness model:

* one job is in flight per worker process at a time — worker-side
  parallelism would hide head-of-line blocking from admission control;
* a crashed worker (stdout EOF, nonzero exit) fails fast: its in-flight
  job is **requeued once** (then failed), and the process is respawned
  up to ``respawn_limit`` times, all counted through ``gateway.*``
  metrics;
* :meth:`drain` refuses new work, waits for backlog + in-flight jobs
  with a deadline, then shuts workers down politely (``shutdown`` op,
  stdin close) before escalating to ``terminate``/``kill``.
"""

from __future__ import annotations

import enum
import os
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro import obs
from repro.gateway import protocol
from repro.service.jobs import JobSpec

__all__ = [
    "Dispatcher",
    "DispatchQueueFull",
    "DispatcherDraining",
    "GatewayJob",
    "GatewayJobState",
]


class DispatchQueueFull(RuntimeError):
    """The dispatch backlog is at capacity."""


class DispatcherDraining(RuntimeError):
    """The dispatcher is draining and refuses new jobs."""


class GatewayJobState(enum.Enum):
    QUEUED = "queued"
    DISPATCHED = "dispatched"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            GatewayJobState.DONE,
            GatewayJobState.FAILED,
            GatewayJobState.CANCELLED,
        )


@dataclass
class GatewayJob:
    """One accepted submission and everything known about it."""

    job_id: str
    spec: JobSpec
    snapshot_path: str
    client: str = "anonymous"
    state: GatewayJobState = GatewayJobState.QUEUED
    source: str = "pending"        # cache | worker | worker-cache
    error: Optional[str] = None
    cache_hit: bool = False
    worker_id: Optional[str] = None
    attempts: int = 0
    retries: int = 0
    rules: int = 0
    computed_id: str = ""
    dispatch_attempts: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: set once at first enqueue and preserved across crash-requeues so
    #: queue-wait accounting covers the *whole* time a job sat waiting
    first_enqueued_at: float = 0.0
    trace_id: str = ""
    #: the gateway's TraceAssembler for this job (None when the gateway
    #: runs without an installed collector)
    trace: object = field(default=None, repr=False)
    done: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view for the status endpoint."""
        return {
            "job_id": self.job_id,
            "cell": self.spec.cell(),
            "state": self.state.value,
            "source": self.source,
            "cache_hit": self.cache_hit,
            "worker": self.worker_id,
            "attempts": self.attempts,
            "retries": self.retries,
            "rules": self.rules,
            "error": self.error,
            "client": self.client,
            "trace_id": self.trace_id,
        }


class _WorkerHandle:
    """One worker process plus its reader thread."""

    def __init__(self, worker_id: str, argv: list[str], env: dict) -> None:
        self.worker_id = worker_id
        self.argv = argv
        self.env = env
        self.proc: subprocess.Popen | None = None
        self.busy: GatewayJob | None = None
        self.ready = False
        self.executed = 0
        self.crashes = 0
        #: bumped on every spawn; exit handling is idempotent per
        #: generation so a crash seen by both the dispatch loop (broken
        #: pipe) and the reader thread (EOF) is recovered exactly once
        self.generation = 0
        self.exit_handled_gen = -1
        #: True while crash recovery is replacing the process.  The
        #: dispatch loop must not select the handle in that window: the
        #: dying process can linger unreapable (``poll()`` still None)
        #: after its pipes EOF, so a job sent "successfully" then would
        #: land in a pipe nobody will ever read.
        self.respawning = False

    def spawn(self) -> None:
        self.ready = False
        self.generation += 1
        self.proc = subprocess.Popen(
            self.argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,          # workers log human text to stderr
            text=True,
            bufsize=1,            # line-buffered pipes
            env=self.env,
        )

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    def send(
        self, message: dict, proc: subprocess.Popen | None = None
    ) -> None:
        # callers that selected a specific process under the dispatcher
        # lock pass it explicitly, so a concurrent respawn swapping
        # ``self.proc`` cannot silently redirect the write
        proc = proc if proc is not None else self.proc
        assert proc is not None and proc.stdin is not None
        proc.stdin.write(protocol.encode_line(message))
        proc.stdin.flush()

    def snapshot(self) -> dict[str, object]:
        return {
            "id": self.worker_id,
            "pid": self.pid,
            "alive": self.alive,
            "ready": self.ready,
            "busy": self.busy.job_id if self.busy is not None else None,
            "executed": self.executed,
            "crashes": self.crashes,
        }


def _worker_env() -> dict:
    """Subprocess env with this repro checkout importable."""
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing
        else src_dir + os.pathsep + existing
    )
    return env


class Dispatcher:
    """Bounded backlog + worker fleet + completion bookkeeping."""

    def __init__(
        self,
        cache_dir: str | Path,
        workers: int = 2,
        queue_depth: int = 64,
        max_retries: int = 3,
        retry_base_delay: float = 0.5,
        respawn_limit: int = 3,
        drain_timeout: float = 30.0,
        python: str = sys.executable,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.cache_dir = Path(cache_dir)
        self.queue_depth = queue_depth
        self.drain_timeout = drain_timeout
        self.respawn_limit = respawn_limit
        env = _worker_env()
        self._workers = [
            _WorkerHandle(
                f"w{index}",
                [
                    python, "-m", "repro.gateway.worker",
                    "--cache-dir", str(self.cache_dir),
                    "--worker-id", f"w{index}",
                    "--max-retries", str(max_retries),
                    "--retry-base-delay", str(retry_base_delay),
                    "--drain-timeout", str(drain_timeout),
                ],
                env,
            )
            for index in range(workers)
        ]
        self._backlog: deque[GatewayJob] = deque()
        self._cv = threading.Condition()
        self._draining = False
        self._stopped = False
        self._started = False
        self._threads: list[threading.Thread] = []
        self.jobs_dispatched = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.worker_crashes = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Dispatcher":
        if self._started:
            return self
        self._started = True
        for handle in self._workers:
            handle.spawn()
            self._spawn_reader(handle)
        thread = threading.Thread(
            target=self._dispatch_loop, name="gateway-dispatch", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self

    def _spawn_reader(self, handle: _WorkerHandle) -> None:
        thread = threading.Thread(
            target=self._reader_loop,
            args=(handle, handle.proc, handle.generation),
            name=f"gateway-read-{handle.worker_id}",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        with self._cv:
            return len(self._backlog)

    @property
    def dispatched(self) -> int:
        with self._cv:
            return sum(
                1 for handle in self._workers if handle.busy is not None
            )

    @property
    def inflight(self) -> int:
        with self._cv:
            busy = sum(
                1 for handle in self._workers if handle.busy is not None
            )
            return len(self._backlog) + busy

    @property
    def draining(self) -> bool:
        with self._cv:
            return self._draining

    def stats(self) -> dict[str, object]:
        with self._cv:
            return {
                "backlog": len(self._backlog),
                "queue_depth": self.queue_depth,
                "dispatched": self.jobs_dispatched,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "worker_crashes": self.worker_crashes,
                "draining": self._draining,
                "workers": [
                    handle.snapshot() for handle in self._workers
                ],
            }

    # ------------------------------------------------------------------
    # submission / cancellation
    # ------------------------------------------------------------------
    def submit(self, job: GatewayJob) -> None:
        """Queue an accepted job for a worker; never blocks."""
        with self._cv:
            if self._draining:
                raise DispatcherDraining("dispatcher is draining")
            if len(self._backlog) >= self.queue_depth:
                raise DispatchQueueFull(
                    f"dispatch backlog at capacity ({self.queue_depth})"
                )
            if not job.first_enqueued_at:
                job.first_enqueued_at = time.monotonic()
            self._backlog.append(job)
            obs.set_gauge("gateway.queue.depth", len(self._backlog))
            self._cv.notify_all()
        if job.trace is not None:
            job.trace.start_phase("gateway.queue")

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; dispatched jobs cannot be recalled."""
        with self._cv:
            for job in self._backlog:
                if job.job_id == job_id:
                    self._backlog.remove(job)
                    job.state = GatewayJobState.CANCELLED
                    job.finished_at = time.monotonic()
                    obs.set_gauge("gateway.queue.depth", len(self._backlog))
                    job.done.set()
                    obs.inc("gateway.jobs_cancelled")
                    if job.trace is not None:
                        job.trace.end_phase("gateway.queue")
                        job.trace.finish(state=job.state.value)
                    return True
        return False

    # ------------------------------------------------------------------
    # dispatch + completion
    # ------------------------------------------------------------------
    def _idle_worker(self) -> Optional[_WorkerHandle]:
        for handle in self._workers:
            if (
                handle.busy is None
                and not handle.respawning
                and handle.alive
            ):
                return handle
        return None

    def _dispatch_loop(self) -> None:
        while True:
            dead_jobs: list[GatewayJob] = []
            with self._cv:
                self._cv.wait_for(
                    lambda: self._stopped or (
                        self._backlog and self._idle_worker() is not None
                    ),
                    timeout=0.5,
                )
                if self._stopped:
                    return
                fleet_dead = all(
                    not h.alive and h.crashes > self.respawn_limit
                    for h in self._workers
                )
                if fleet_dead and self._backlog:
                    # nothing will ever serve these — fail fast instead
                    # of letting clients poll a permanently-queued job
                    dead_jobs = list(self._backlog)
                    self._backlog.clear()
                    obs.set_gauge("gateway.queue.depth", 0)
                handle = self._idle_worker()
                if dead_jobs or handle is None or not self._backlog:
                    job = None
                    proc = None
                    generation = -1
                else:
                    job = self._backlog.popleft()
                    obs.set_gauge("gateway.queue.depth", len(self._backlog))
                    handle.busy = job
                    job.worker_id = handle.worker_id
                    job.state = GatewayJobState.DISPATCHED
                    job.started_at = time.monotonic()
                    job.dispatch_attempts += 1
                    # pin the process + generation selected under the
                    # lock: if the worker dies and is respawned before
                    # the send below, writing to ``handle.proc`` would
                    # hit the *new* process while the recovery path has
                    # already requeued the job
                    proc = handle.proc
                    generation = handle.generation
            for dead in dead_jobs:
                self._fail_inflight(dead)
            if job is None:
                continue
            obs.observe(
                "gateway.queue_wait_seconds",
                time.monotonic() - job.first_enqueued_at,
            )
            if job.trace is not None:
                job.trace.end_phase("gateway.queue")
                job.trace.start_phase(
                    "gateway.attempt",
                    worker=handle.worker_id,
                    pid=handle.pid,
                    attempt=job.dispatch_attempts,
                )
            try:
                handle.send(protocol.job_message(
                    job.job_id, job.spec, job.snapshot_path,
                    traceparent=(
                        job.trace.traceparent
                        if job.trace is not None else None
                    ),
                ), proc=proc)
                with self._cv:
                    self.jobs_dispatched += 1
                obs.inc("gateway.jobs_dispatched", worker=handle.worker_id)
            except (OSError, ValueError):
                # broken pipe: recover the job now — the reader thread
                # may already have drained this generation's EOF, so the
                # per-generation guard makes double handling a no-op
                self._on_worker_exit(handle, generation)

    def _resolve(self, job: GatewayJob, event: dict) -> None:
        ok = bool(event.get("ok"))
        job.cache_hit = bool(event.get("cache_hit"))
        job.attempts = int(event.get("attempts") or 0)
        job.retries = int(event.get("retries") or 0)
        job.rules = int(event.get("rules") or 0)
        job.computed_id = str(event.get("computed_id") or "")
        job.finished_at = time.monotonic()
        if ok:
            job.state = GatewayJobState.DONE
            job.source = "worker-cache" if job.cache_hit else "worker"
            with self._cv:
                self.jobs_completed += 1
        else:
            job.state = GatewayJobState.FAILED
            job.error = str(event.get("error") or "worker failure")
            job.source = "worker"
            with self._cv:
                self.jobs_failed += 1
        if job.computed_id and job.computed_id != job.job_id:
            # the worker's content address disagrees with the gateway's:
            # results landed under a different cache key (e.g. graph
            # snapshot did not round-trip byte-stable)
            obs.inc("gateway.fingerprint_mismatches")
        obs.inc(
            "gateway.jobs_completed",
            ok=ok, cache_hit=job.cache_hit,
        )
        if job.cache_hit:
            obs.inc("gateway.cache.hits", source="worker")
        elif ok:
            obs.inc("gateway.cache.misses", source="worker")
        if job.started_at is not None:
            obs.observe(
                "gateway.job_seconds", job.finished_at - job.started_at
            )
        if job.trace is not None:
            attempt = job.trace.end_phase(
                "gateway.attempt",
                ok=ok, cache_hit=job.cache_hit, rules=job.rules,
            )
            spans = event.get("spans")
            if spans:
                job.trace.graft(
                    spans, under=attempt, worker=job.worker_id or "",
                )
            job.trace.finish(
                state=job.state.value, source=job.source, error=job.error,
            )
        job.done.set()

    def _reader_loop(
        self,
        handle: _WorkerHandle,
        proc: subprocess.Popen,
        generation: int,
    ) -> None:
        assert proc is not None and proc.stdout is not None
        for line in proc.stdout:
            line = line.strip()
            if not line:
                continue
            try:
                event = protocol.decode_line(line)
            except protocol.ProtocolError:
                obs.inc("gateway.protocol_errors", worker=handle.worker_id)
                continue
            kind = event.get("event")
            if kind == "ready":
                with self._cv:
                    handle.ready = True
                    self._cv.notify_all()
            elif kind == "done":
                with self._cv:
                    job = handle.busy
                    handle.busy = None
                    handle.executed += 1
                    self._cv.notify_all()
                if job is not None:
                    self._resolve(job, event)
        self._on_worker_exit(handle, generation)

    def _fail_inflight(self, job: GatewayJob) -> None:
        job.state = GatewayJobState.FAILED
        job.error = "worker process died while executing the job"
        job.finished_at = time.monotonic()
        with self._cv:
            self.jobs_failed += 1
        obs.inc("gateway.jobs_completed", ok=False, cache_hit=False)
        if job.trace is not None:
            job.trace.end_phase("gateway.attempt", error=job.error)
            job.trace.finish(state=job.state.value, error=job.error)
        job.done.set()

    def _on_worker_exit(self, handle: _WorkerHandle, generation: int) -> None:
        """Stdout EOF / broken pipe: recover the job, maybe respawn.

        Idempotent per process generation: the dispatch loop (send
        failure) and the reader thread (EOF) may both observe one death.
        """
        with self._cv:
            if handle.exit_handled_gen >= generation:
                return
            handle.exit_handled_gen = generation
            # keep the handle out of _idle_worker until the replacement
            # process (if any) is fully spawned — the dying one can stay
            # unreapable for a moment after its pipes EOF, so ``alive``
            # alone cannot be trusted here
            handle.respawning = True
            job = handle.busy
            handle.busy = None
            stopping = self._draining or self._stopped
            crashed = job is not None or not stopping
            if crashed:
                handle.crashes += 1
                self.worker_crashes += 1
            self._cv.notify_all()
        if crashed:
            obs.inc("gateway.worker_crashes", worker=handle.worker_id)
        if job is not None and not job.state.terminal:
            if stopping or job.dispatch_attempts > 1:
                # during drain there is no fleet left to retry on; and a
                # twice-crashed job is poison — fail it loudly
                self._fail_inflight(job)
            else:
                if job.trace is not None:
                    # the aborted attempt stays in the tree, marked as an
                    # error; the retry lands beside it as a sibling
                    job.trace.end_phase(
                        "gateway.attempt", error="worker_crash",
                    )
                    job.trace.event(
                        "gateway.requeue",
                        worker=handle.worker_id,
                        attempt=job.dispatch_attempts,
                        waited_seconds=(
                            time.monotonic() - job.first_enqueued_at
                        ),
                    )
                with self._cv:
                    job.state = GatewayJobState.QUEUED
                    job.worker_id = None
                    self._backlog.appendleft(job)
                    obs.set_gauge(
                        "gateway.queue.depth", len(self._backlog)
                    )
                    self._cv.notify_all()
                obs.inc("gateway.jobs_requeued")
                if job.trace is not None:
                    job.trace.start_phase("gateway.queue", requeued=True)
        try:
            if not stopping and handle.crashes <= self.respawn_limit:
                handle.spawn()
                self._spawn_reader(handle)
        except OSError:
            pass
        finally:
            with self._cv:
                handle.respawning = False
                self._cv.notify_all()

    # ------------------------------------------------------------------
    # drain / stop
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Refuse new jobs, finish in-flight work, stop the fleet.

        Returns True when every queued and dispatched job reached a
        terminal state before the deadline; a False return means the
        fleet was stopped with work abandoned (those jobs stay
        non-terminal — callers surface that as a failed drain).
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cv:
            self._draining = True
            clean = self._cv.wait_for(
                lambda: not self._backlog and all(
                    handle.busy is None for handle in self._workers
                ),
                timeout=timeout,
            )
        self._shutdown_workers(deadline)
        with self._cv:
            self._stopped = True
            self._cv.notify_all()
        return clean

    def stop(self) -> None:
        """Hard stop: no waiting beyond the polite shutdown handshake."""
        with self._cv:
            self._draining = True
            self._stopped = True
            self._cv.notify_all()
        self._shutdown_workers(deadline=time.monotonic() + 5.0)

    def _shutdown_workers(self, deadline: float | None) -> None:
        for handle in self._workers:
            proc = handle.proc
            if proc is None or proc.poll() is not None:
                continue
            try:
                handle.send(protocol.shutdown_message())
                proc.stdin.close()
            except (OSError, ValueError):
                pass
        for handle in self._workers:
            proc = handle.proc
            if proc is None:
                continue
            remaining = 5.0
            if deadline is not None:
                remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
