"""Scalar and aggregate function registry for the Cypher subset.

Scalar functions receive already-evaluated argument values (Python
primitives, lists, maps, :class:`~repro.graph.model.Node` /
:class:`~repro.graph.model.Edge`).  Cypher null-propagation is applied here:
most functions return ``None`` when any required argument is ``None``.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.cypher.errors import CypherTypeError, UnknownFunctionError
from repro.graph.model import Edge, Node

ScalarFunction = Callable[..., object]


def _require_string(name: str, value: object) -> str:
    if not isinstance(value, str):
        raise CypherTypeError(
            f"{name}() expects a string, got {type(value).__name__}"
        )
    return value


def _require_number(name: str, value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CypherTypeError(
            f"{name}() expects a number, got {type(value).__name__}"
        )
    return value


def _null_if_none(func: ScalarFunction) -> ScalarFunction:
    """Wrap ``func`` so that any None argument yields None."""

    def wrapper(*args: object) -> object:
        if any(arg is None for arg in args):
            return None
        return func(*args)

    return wrapper


# ----------------------------------------------------------------------
# scalar functions
# ----------------------------------------------------------------------
def _to_string(value: object) -> object:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)


def _to_integer(value: object) -> object:
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        try:
            return int(float(value)) if "." in value else int(value)
        except ValueError:
            return None
    return None


def _to_float(value: object) -> object:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def _to_boolean(value: object) -> object:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
    return None


def _size(value: object) -> object:
    if isinstance(value, (list, tuple, str, dict)):
        return len(value)
    raise CypherTypeError(
        f"size() expects a list or string, got {type(value).__name__}"
    )


def _labels(value: object) -> object:
    if isinstance(value, Node):
        return value.sorted_labels()
    raise CypherTypeError("labels() expects a node")


def _type(value: object) -> object:
    if isinstance(value, Edge):
        return value.label
    raise CypherTypeError("type() expects a relationship")


def _id(value: object) -> object:
    if isinstance(value, (Node, Edge)):
        return value.id
    raise CypherTypeError("id() expects a node or relationship")


def _keys(value: object) -> object:
    if isinstance(value, (Node, Edge)):
        return sorted(value.properties)
    if isinstance(value, dict):
        return sorted(value)
    raise CypherTypeError("keys() expects a node, relationship or map")


def _properties(value: object) -> object:
    if isinstance(value, (Node, Edge)):
        return dict(value.properties)
    if isinstance(value, dict):
        return dict(value)
    raise CypherTypeError("properties() expects a node, relationship or map")


def _head(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return value[0] if value else None
    raise CypherTypeError("head() expects a list")


def _last(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return value[-1] if value else None
    raise CypherTypeError("last() expects a list")


def _tail(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return list(value[1:])
    raise CypherTypeError("tail() expects a list")


def _reverse(value: object) -> object:
    if isinstance(value, str):
        return value[::-1]
    if isinstance(value, (list, tuple)):
        return list(value)[::-1]
    raise CypherTypeError("reverse() expects a string or list")


def _substring(value: object, start: object, length: object = None) -> object:
    text = _require_string("substring", value)
    begin = int(_require_number("substring", start))
    if length is None:
        return text[begin:]
    return text[begin:begin + int(_require_number("substring", length))]


def _range(start: object, end: object, step: object = 1) -> object:
    begin = int(_require_number("range", start))
    stop = int(_require_number("range", end))
    stride = int(_require_number("range", step))
    if stride == 0:
        raise CypherTypeError("range() step must not be zero")
    # Cypher's range end is inclusive
    offset = 1 if stride > 0 else -1
    return list(range(begin, stop + offset, stride))


def _round(value: object, precision: object = 0) -> object:
    number = _require_number("round", value)
    digits = int(_require_number("round", precision))
    result = round(number, digits)
    return result if digits else float(math.floor(number + 0.5))


def _start_node(value: object, graph_nodes: object = None) -> object:
    raise CypherTypeError(
        "startNode()/endNode() require graph context; use the executor"
    )


SCALAR_FUNCTIONS: dict[str, ScalarFunction] = {
    "tostring": _null_if_none(_to_string),
    "tointeger": _null_if_none(_to_integer),
    "toint": _null_if_none(_to_integer),
    "tofloat": _null_if_none(_to_float),
    "toboolean": _null_if_none(_to_boolean),
    "size": _null_if_none(_size),
    "length": _null_if_none(_size),
    "labels": _null_if_none(_labels),
    "type": _null_if_none(_type),
    "id": _null_if_none(_id),
    "keys": _null_if_none(_keys),
    "properties": _null_if_none(_properties),
    "head": _null_if_none(_head),
    "last": _null_if_none(_last),
    "tail": _null_if_none(_tail),
    "reverse": _null_if_none(_reverse),
    "toupper": _null_if_none(lambda v: _require_string("toUpper", v).upper()),
    "tolower": _null_if_none(lambda v: _require_string("toLower", v).lower()),
    "upper": _null_if_none(lambda v: _require_string("upper", v).upper()),
    "lower": _null_if_none(lambda v: _require_string("lower", v).lower()),
    "trim": _null_if_none(lambda v: _require_string("trim", v).strip()),
    "ltrim": _null_if_none(lambda v: _require_string("ltrim", v).lstrip()),
    "rtrim": _null_if_none(lambda v: _require_string("rtrim", v).rstrip()),
    "replace": _null_if_none(
        lambda v, old, new: _require_string("replace", v).replace(
            _require_string("replace", old), _require_string("replace", new)
        )
    ),
    "split": _null_if_none(
        lambda v, sep: _require_string("split", v).split(
            _require_string("split", sep)
        )
    ),
    "substring": _null_if_none(_substring),
    "left": _null_if_none(
        lambda v, n: _require_string("left", v)[: int(_require_number("left", n))]
    ),
    "right": _null_if_none(
        lambda v, n: _require_string("right", v)[-int(_require_number("right", n)):]
    ),
    "abs": _null_if_none(lambda v: abs(_require_number("abs", v))),
    "ceil": _null_if_none(lambda v: float(math.ceil(_require_number("ceil", v)))),
    "floor": _null_if_none(lambda v: float(math.floor(_require_number("floor", v)))),
    "round": _null_if_none(_round),
    "sign": _null_if_none(
        lambda v: 0 if _require_number("sign", v) == 0
        else (1 if _require_number("sign", v) > 0 else -1)
    ),
    "sqrt": _null_if_none(lambda v: math.sqrt(_require_number("sqrt", v))),
    "exp": _null_if_none(lambda v: math.exp(_require_number("exp", v))),
    "log": _null_if_none(lambda v: math.log(_require_number("log", v))),
    "log10": _null_if_none(lambda v: math.log10(_require_number("log10", v))),
    "range": _range,  # range() has no null-propagating args in practice
}


def _coalesce(*args: object) -> object:
    for arg in args:
        if arg is not None:
            return arg
    return None


SCALAR_FUNCTIONS["coalesce"] = _coalesce


# ----------------------------------------------------------------------
# aggregate functions
# ----------------------------------------------------------------------
AGGREGATE_FUNCTION_NAMES = frozenset({
    "count", "collect", "sum", "avg", "min", "max", "stdev", "stdevp",
    "percentilecont", "percentiledisc",
})


def _numeric_values(name: str, values: Sequence[object]) -> list[float]:
    numbers = []
    for value in values:
        if value is None:
            continue
        numbers.append(_require_number(name, value))
    return numbers


def aggregate(name: str, values: Sequence[object], distinct: bool) -> object:
    """Apply aggregate ``name`` to ``values`` (nulls already meaningful).

    ``values`` excludes rows where the argument evaluated to ``None`` for
    ``count(expr)`` semantics; callers pass the raw list and we drop nulls
    here to keep the semantics in one place.
    """
    non_null = [value for value in values if value is not None]
    if distinct:
        seen: list[object] = []
        for value in non_null:
            if value not in seen:
                seen.append(value)
        non_null = seen

    if name == "count":
        return len(non_null)
    if name == "collect":
        return list(non_null)
    if name == "sum":
        return sum(_numeric_values("sum", non_null)) if non_null else 0
    if name == "avg":
        numbers = _numeric_values("avg", non_null)
        return sum(numbers) / len(numbers) if numbers else None
    if name == "min":
        return min(non_null, default=None)
    if name == "max":
        return max(non_null, default=None)
    if name in ("stdev", "stdevp"):
        numbers = _numeric_values(name, non_null)
        if len(numbers) < 2:
            return 0.0
        mean = sum(numbers) / len(numbers)
        divisor = len(numbers) - (1 if name == "stdev" else 0)
        return math.sqrt(sum((n - mean) ** 2 for n in numbers) / divisor)
    if name in ("percentilecont", "percentiledisc"):
        raise UnknownFunctionError(name)
    raise UnknownFunctionError(name)


def is_aggregate(name: str) -> bool:
    return name.lower() in AGGREGATE_FUNCTION_NAMES


def call_scalar(name: str, args: Sequence[object]) -> object:
    """Invoke scalar function ``name`` with evaluated ``args``."""
    func = SCALAR_FUNCTIONS.get(name.lower())
    if func is None:
        raise UnknownFunctionError(name)
    return func(*args)
