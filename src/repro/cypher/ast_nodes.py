"""Abstract syntax tree for the Cypher subset.

Expression nodes evaluate to values; clause nodes transform a stream of
bindings (see :mod:`repro.cypher.executor`).  All nodes are frozen
dataclasses so ASTs can be hashed, compared and cached safely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    value: object


@dataclass(frozen=True)
class Variable(Expression):
    name: str


@dataclass(frozen=True)
class Parameter(Expression):
    name: str


@dataclass(frozen=True)
class PropertyAccess(Expression):
    subject: Expression
    key: str


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison and boolean binary operators.

    ``op`` is one of: ``+ - * / % ^ = <> < <= > >= AND OR XOR``.
    """

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``NOT expr`` or arithmetic negation ``-expr``."""

    op: str  # 'NOT' | '-' | '+'
    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str                      # lower-cased
    args: tuple[Expression, ...]
    distinct: bool = False
    star: bool = False             # count(*)


@dataclass(frozen=True)
class ListLiteral(Expression):
    items: tuple[Expression, ...]


@dataclass(frozen=True)
class MapLiteral(Expression):
    entries: tuple[tuple[str, Expression], ...]


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False          # IS NOT NULL


@dataclass(frozen=True)
class InList(Expression):
    needle: Expression
    haystack: Expression


@dataclass(frozen=True)
class StringPredicate(Expression):
    """STARTS WITH / ENDS WITH / CONTAINS."""

    kind: str                      # 'STARTS WITH' | 'ENDS WITH' | 'CONTAINS'
    left: Expression
    right: Expression


@dataclass(frozen=True)
class RegexMatch(Expression):
    """``left =~ right`` — full-string regular-expression match."""

    left: Expression
    right: Expression


@dataclass(frozen=True)
class CaseExpression(Expression):
    """Both simple (operand set) and searched CASE."""

    operand: Optional[Expression]
    whens: tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression]


@dataclass(frozen=True)
class LabelPredicate(Expression):
    """``n:Label`` used as a boolean predicate in WHERE."""

    subject: Expression
    labels: tuple[str, ...]


@dataclass(frozen=True)
class ListIndex(Expression):
    subject: Expression
    index: Expression


@dataclass(frozen=True)
class ListSlice(Expression):
    subject: Expression
    start: Optional[Expression]
    end: Optional[Expression]


@dataclass(frozen=True)
class ListComprehension(Expression):
    """``[x IN list WHERE pred | expr]``."""

    variable: str
    source: Expression
    predicate: Optional[Expression]
    projection: Optional[Expression]


@dataclass(frozen=True)
class PatternExpression(Expression):
    """A bare path pattern used as an existence predicate in WHERE,
    e.g. ``NOT (u)-[:FOLLOWS]->(u)``."""

    pattern: "PathPattern"


@dataclass(frozen=True)
class ExistsExpression(Expression):
    """``exists(n.prop)`` or ``EXISTS { (pattern) }``-style existence."""

    operand: Expression


# ----------------------------------------------------------------------
# patterns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodePattern:
    variable: Optional[str]
    labels: tuple[str, ...]
    properties: tuple[tuple[str, Expression], ...] = ()


@dataclass(frozen=True)
class RelPattern:
    """A relationship pattern element.

    ``direction`` is ``'out'`` (``-[]->``), ``'in'`` (``<-[]-``) or
    ``'any'`` (``-[]-``).  ``min_hops``/``max_hops`` support the simple
    variable-length form ``*m..n`` (both default to 1 for a plain edge).
    """

    variable: Optional[str]
    types: tuple[str, ...]
    direction: str
    properties: tuple[tuple[str, Expression], ...] = ()
    min_hops: int = 1
    max_hops: int = 1

    @property
    def is_variable_length(self) -> bool:
        return (self.min_hops, self.max_hops) != (1, 1)


@dataclass(frozen=True)
class PathPattern:
    """An alternating node/relationship chain, optionally named."""

    variable: Optional[str]
    elements: tuple[Union[NodePattern, RelPattern], ...]

    def nodes(self) -> tuple[NodePattern, ...]:
        return tuple(e for e in self.elements if isinstance(e, NodePattern))

    def relationships(self) -> tuple[RelPattern, ...]:
        return tuple(e for e in self.elements if isinstance(e, RelPattern))


# ----------------------------------------------------------------------
# clauses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProjectionItem:
    """One ``expr [AS alias]`` item in WITH/RETURN."""

    expression: Expression
    alias: Optional[str]
    text: str                      # source text, used as the column name

    @property
    def column_name(self) -> str:
        return self.alias if self.alias is not None else self.text


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class MatchClause:
    patterns: tuple[PathPattern, ...]
    optional: bool = False
    where: Optional[Expression] = None


@dataclass(frozen=True)
class UnwindClause:
    expression: Expression
    alias: str


@dataclass(frozen=True)
class WithClause:
    items: tuple[ProjectionItem, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None
    where: Optional[Expression] = None
    star: bool = False             # WITH *


@dataclass(frozen=True)
class ReturnClause:
    items: tuple[ProjectionItem, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None
    star: bool = False             # RETURN *


@dataclass(frozen=True)
class CreateClause:
    patterns: tuple[PathPattern, ...]


@dataclass(frozen=True)
class MergeClause:
    pattern: PathPattern


@dataclass(frozen=True)
class SetItem:
    """``target.key = value`` or (key None) ``target += map``."""

    target: str                     # variable name
    key: Optional[str]
    value: Expression
    replace: bool = False           # '=' with key None replaces the map


@dataclass(frozen=True)
class SetClause:
    items: tuple[SetItem, ...]


@dataclass(frozen=True)
class RemoveItem:
    """``target.key`` (property removal); label removal unsupported."""

    target: str
    key: str


@dataclass(frozen=True)
class RemoveClause:
    items: tuple[RemoveItem, ...]


@dataclass(frozen=True)
class DeleteClause:
    expressions: tuple[Expression, ...]
    detach: bool = False


Clause = Union[
    MatchClause, UnwindClause, WithClause, ReturnClause,
    CreateClause, MergeClause, SetClause, RemoveClause, DeleteClause,
]


@dataclass(frozen=True)
class SingleQuery:
    clauses: tuple[Clause, ...]

    @property
    def return_clause(self) -> Optional[ReturnClause]:
        last = self.clauses[-1] if self.clauses else None
        return last if isinstance(last, ReturnClause) else None


@dataclass(frozen=True)
class UnionQuery:
    queries: tuple[SingleQuery, ...]
    all: bool = False


Query = Union[SingleQuery, UnionQuery]
