"""Hand-written lexer for the Cypher subset.

Produces a flat token list.  ``-`` is always emitted as ``DASH``; the parser
decides from context whether it is part of a relationship pattern or an
arithmetic minus.  ``<`` followed by ``-`` becomes ``ARROW_LEFT`` only when
that is lexically unambiguous (``<-[``/``<-(``), so comparisons like
``a < -1`` still work.
"""

from __future__ import annotations

from repro.cypher.errors import CypherSyntaxError
from repro.cypher.tokens import KEYWORDS, Token, TokenType

_SIMPLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "|": TokenType.PIPE,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "^": TokenType.CARET,
    "$": TokenType.DOLLAR,
}


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_part(char: str) -> bool:
    return char.isalnum() or char == "_"


class Lexer:
    """Single-pass tokenizer over a query string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        """Tokenize the entire input, appending a final EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char.isspace():
                self.pos += 1
            elif char == "/" and self._peek(1) == "/":
                newline = self.text.find("\n", self.pos)
                self.pos = len(self.text) if newline == -1 else newline + 1
            elif char == "/" and self._peek(1) == "*":
                close = self.text.find("*/", self.pos + 2)
                if close == -1:
                    raise CypherSyntaxError("unterminated comment", self.pos)
                self.pos = close + 2
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        start = self.pos
        if self.pos >= len(self.text):
            return Token(TokenType.EOF, "", start)

        char = self.text[self.pos]

        if char in "'\"":
            return self._string(char)
        if char.isdigit():
            return self._number()
        if _is_ident_start(char):
            return self._word()
        if char == "`":
            return self._backtick_ident()

        # multi-character operators, longest first
        two = self.text[self.pos:self.pos + 2]
        if two == "=~":
            self.pos += 2
            return Token(TokenType.REGEX_MATCH, two, start)
        if two == "<>":
            self.pos += 2
            return Token(TokenType.NEQ, two, start)
        if two == "<=":
            self.pos += 2
            return Token(TokenType.LTE, two, start)
        if two == ">=":
            self.pos += 2
            return Token(TokenType.GTE, two, start)
        if two == "->":
            self.pos += 2
            return Token(TokenType.ARROW_RIGHT, two, start)
        if two == "<-" and self._peek(2) in "([-":
            self.pos += 2
            return Token(TokenType.ARROW_LEFT, two, start)
        if two == "!=":
            self.pos += 2
            return Token(TokenType.NEQ, two, start)

        if char == "=":
            self.pos += 1
            return Token(TokenType.EQ, char, start)
        if char == "<":
            self.pos += 1
            return Token(TokenType.LT, char, start)
        if char == ">":
            self.pos += 1
            return Token(TokenType.GT, char, start)
        if char == "-":
            self.pos += 1
            return Token(TokenType.DASH, char, start)
        if char in _SIMPLE:
            self.pos += 1
            return Token(_SIMPLE[char], char, start)

        raise CypherSyntaxError(f"unexpected character {char!r}", start)

    # ------------------------------------------------------------------
    def _string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        parts: list[str] = []
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char == "\\":
                escape = self._peek(1)
                mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\",
                           "'": "'", '"': '"'}
                parts.append(mapping.get(escape, "\\" + escape))
                self.pos += 2
            elif char == quote:
                self.pos += 1
                return Token(TokenType.STRING, "".join(parts), start)
            else:
                parts.append(char)
                self.pos += 1
        raise CypherSyntaxError("unterminated string literal", start)

    def _number(self) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self.pos += 1
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self.pos += 1
            while self._peek().isdigit():
                self.pos += 1
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self.pos += 1
            if self._peek() in "+-":
                self.pos += 1
            while self._peek().isdigit():
                self.pos += 1
        text = self.text[start:self.pos]
        kind = TokenType.FLOAT if is_float else TokenType.INTEGER
        return Token(kind, text, start)

    def _word(self) -> Token:
        start = self.pos
        while _is_ident_part(self._peek()):
            self.pos += 1
        text = self.text[start:self.pos]
        if text.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, text, start)
        return Token(TokenType.IDENT, text, start)

    def _backtick_ident(self) -> Token:
        start = self.pos
        close = self.text.find("`", self.pos + 1)
        if close == -1:
            raise CypherSyntaxError("unterminated backtick identifier", start)
        text = self.text[self.pos + 1:close]
        self.pos = close + 1
        return Token(TokenType.IDENT, text, start)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    return Lexer(text).tokenize()
