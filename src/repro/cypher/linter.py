"""Static validation of Cypher queries against a graph's data model.

The paper (§4.4) counts a query as *not correct* "if it has syntax errors
or if its formulation does not match the data model", and buckets the
errors into three categories:

1. **wrong relationship direction** — the pattern traverses an edge type in
   a direction that never occurs in the data, while the reverse does;
2. **hallucinated properties / labels** — the query references property
   keys (or labels) that do not exist on the matched element type;
3. **syntax errors** — e.g. comparing against a regular expression with
   ``=`` instead of ``=~``.

The linter reproduces the authors' manual check automatically: parse the
query, bind pattern variables to labels, and test every reference against
the :class:`~repro.graph.schema.GraphSchema`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.cypher.ast_nodes import (
    BinaryOp,
    CaseExpression,
    ExistsExpression,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LabelPredicate,
    ListComprehension,
    ListIndex,
    ListLiteral,
    ListSlice,
    Literal,
    MapLiteral,
    MatchClause,
    NodePattern,
    PathPattern,
    PatternExpression,
    PropertyAccess,
    Query,
    RegexMatch,
    RelPattern,
    ReturnClause,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)
from repro.cypher.errors import CypherSyntaxError
from repro.cypher.parser import parse
from repro.graph.schema import GraphSchema


class ErrorCategory(Enum):
    """The paper's three Cypher error categories."""

    SYNTAX = "syntax"
    DIRECTION = "direction"
    HALLUCINATED_PROPERTY = "hallucinated_property"


@dataclass(frozen=True)
class LintIssue:
    category: ErrorCategory
    message: str
    subject: Optional[str] = None  # variable/label/property concerned
    #: character offset of the offending construct in the query text,
    #: when known — the classifier breaks primary-category ties on it
    position: Optional[int] = None


@dataclass
class LintReport:
    """Outcome of linting one query."""

    query_text: str
    issues: list[LintIssue] = field(default_factory=list)
    parse_failed: bool = False

    @property
    def is_correct(self) -> bool:
        return not self.issues

    def categories(self) -> set[ErrorCategory]:
        return {issue.category for issue in self.issues}

    def has(self, category: ErrorCategory) -> bool:
        return category in self.categories()


#: Heuristic for "this string literal was meant as a regular expression":
#: anchors, character classes or quantifier braces.
_REGEX_LITERAL = re.compile(r"(\^)|(\$$)|(\[[^\]]+\])|(\{\d+,?\d*\})|(\\\w)")


def looks_like_regex(text: str) -> bool:
    """True if a string literal is plausibly a regular expression."""
    return bool(_REGEX_LITERAL.search(text))


class Linter:
    """Validates queries against an inferred :class:`GraphSchema`."""

    def __init__(self, schema: GraphSchema) -> None:
        self.schema = schema

    # ------------------------------------------------------------------
    def lint(self, query_text: str) -> LintReport:
        report = LintReport(query_text=query_text)
        try:
            query = parse(query_text)
        except CypherSyntaxError as exc:
            report.parse_failed = True
            report.issues.append(
                LintIssue(
                    ErrorCategory.SYNTAX,
                    f"parse error: {exc}",
                    position=exc.position or 0,
                )
            )
            return report
        self._lint_query(query, report)
        return report

    # ------------------------------------------------------------------
    def _lint_query(self, query: Query, report: LintReport) -> None:
        if isinstance(query, UnionQuery):
            for sub in query.queries:
                self._lint_query(sub, report)
            return
        assert isinstance(query, SingleQuery)
        # variable -> node labels (from patterns) or edge types
        node_vars: dict[str, tuple[str, ...]] = {}
        edge_vars: dict[str, tuple[str, ...]] = {}
        for clause in query.clauses:
            if isinstance(clause, MatchClause):
                for pattern in clause.patterns:
                    self._lint_pattern(pattern, report, node_vars, edge_vars)
                if clause.where is not None:
                    self._lint_expression(
                        clause.where, report, node_vars, edge_vars
                    )
            elif isinstance(clause, UnwindClause):
                self._lint_expression(
                    clause.expression, report, node_vars, edge_vars
                )
            elif isinstance(clause, (WithClause, ReturnClause)):
                for item in clause.items:
                    self._lint_expression(
                        item.expression, report, node_vars, edge_vars
                    )
                for order_item in clause.order_by:
                    self._lint_expression(
                        order_item.expression, report, node_vars, edge_vars
                    )
                where = getattr(clause, "where", None)
                if where is not None:
                    self._lint_expression(where, report, node_vars, edge_vars)

    # ------------------------------------------------------------------
    def _lint_pattern(
        self,
        pattern: PathPattern,
        report: LintReport,
        node_vars: dict[str, tuple[str, ...]],
        edge_vars: dict[str, tuple[str, ...]],
    ) -> None:
        elements = pattern.elements
        for element in elements:
            if isinstance(element, NodePattern):
                for label in element.labels:
                    if label not in self.schema.node_profiles:
                        report.issues.append(
                            LintIssue(
                                ErrorCategory.HALLUCINATED_PROPERTY,
                                f"unknown node label :{label}",
                                subject=label,
                            )
                        )
                if element.variable and element.labels:
                    node_vars[element.variable] = element.labels
                for key, _value in element.properties:
                    self._check_node_property(element.labels, key, report)
            elif isinstance(element, RelPattern):
                for rel_type in element.types:
                    if rel_type not in self.schema.edge_profiles:
                        report.issues.append(
                            LintIssue(
                                ErrorCategory.HALLUCINATED_PROPERTY,
                                f"unknown relationship type :{rel_type}",
                                subject=rel_type,
                            )
                        )
                if element.variable and element.types:
                    edge_vars[element.variable] = element.types
                for key, _value in element.properties:
                    self._check_edge_property(element.types, key, report)

        # direction validation on (node, rel, node) triples
        for index in range(1, len(elements), 2):
            rel = elements[index]
            left = elements[index - 1]
            right = elements[index + 1]
            if not isinstance(rel, RelPattern):
                continue
            self._check_direction(left, rel, right, report)

    def _check_direction(
        self,
        left: NodePattern,
        rel: RelPattern,
        right: NodePattern,
        report: LintReport,
    ) -> None:
        if rel.direction == "any" or not rel.types:
            return
        if not left.labels or not right.labels:
            return  # unlabeled endpoint: cannot judge direction
        for rel_type in rel.types:
            if rel_type not in self.schema.edge_profiles:
                continue  # already reported as hallucinated
            if rel.direction == "out":
                src_labels, dst_labels = left.labels, right.labels
            else:
                src_labels, dst_labels = right.labels, left.labels
            forward = any(
                self.schema.edge_connects(src, rel_type, dst)
                for src in src_labels
                for dst in dst_labels
            )
            if forward:
                continue
            backward = any(
                self.schema.edge_connects(dst, rel_type, src)
                for src in src_labels
                for dst in dst_labels
            )
            if backward:
                offset = report.query_text.find(f":{rel_type}")
                report.issues.append(
                    LintIssue(
                        ErrorCategory.DIRECTION,
                        f"relationship :{rel_type} never goes from "
                        f"{'/'.join(src_labels)} to {'/'.join(dst_labels)}; "
                        "the opposite direction exists in the data",
                        subject=rel_type,
                        position=offset if offset >= 0 else None,
                    )
                )
            else:
                report.issues.append(
                    LintIssue(
                        ErrorCategory.HALLUCINATED_PROPERTY,
                        f"no :{rel_type} relationship between "
                        f"{'/'.join(left.labels)} and "
                        f"{'/'.join(right.labels)} in either direction",
                        subject=rel_type,
                    )
                )

    def _check_node_property(
        self, labels: tuple[str, ...], key: str, report: LintReport
    ) -> None:
        known_labels = [
            label for label in labels if label in self.schema.node_profiles
        ]
        if not known_labels:
            return  # label itself unknown: already reported
        if not any(
            self.schema.has_node_property(label, key) for label in known_labels
        ):
            report.issues.append(
                LintIssue(
                    ErrorCategory.HALLUCINATED_PROPERTY,
                    f"property {key!r} does not exist on nodes labelled "
                    f":{':'.join(known_labels)}",
                    subject=key,
                )
            )

    def _check_edge_property(
        self, types: tuple[str, ...], key: str, report: LintReport
    ) -> None:
        known = [t for t in types if t in self.schema.edge_profiles]
        if not known:
            return
        if not any(self.schema.has_edge_property(t, key) for t in known):
            report.issues.append(
                LintIssue(
                    ErrorCategory.HALLUCINATED_PROPERTY,
                    f"property {key!r} does not exist on "
                    f":{'|'.join(known)} relationships",
                    subject=key,
                )
            )

    # ------------------------------------------------------------------
    def _lint_expression(
        self,
        expr: Expression,
        report: LintReport,
        node_vars: dict[str, tuple[str, ...]],
        edge_vars: dict[str, tuple[str, ...]],
    ) -> None:
        if isinstance(expr, PropertyAccess):
            subject = expr.subject
            if isinstance(subject, Variable):
                if subject.name in node_vars:
                    self._check_node_property(
                        node_vars[subject.name], expr.key, report
                    )
                elif subject.name in edge_vars:
                    self._check_edge_property(
                        edge_vars[subject.name], expr.key, report
                    )
            else:
                self._lint_expression(subject, report, node_vars, edge_vars)
            return
        if isinstance(expr, BinaryOp):
            if expr.op == "=" and self._is_regex_equality(expr):
                offset = report.query_text.find(expr.right.value)
                report.issues.append(
                    LintIssue(
                        ErrorCategory.SYNTAX,
                        "'=' used to compare against a regular expression; "
                        "the regex-match operator is '=~'",
                        position=offset if offset >= 0 else None,
                    )
                )
            self._lint_expression(expr.left, report, node_vars, edge_vars)
            self._lint_expression(expr.right, report, node_vars, edge_vars)
            return
        if isinstance(expr, UnaryOp):
            self._lint_expression(expr.operand, report, node_vars, edge_vars)
            return
        if isinstance(expr, FunctionCall):
            for arg in expr.args:
                self._lint_expression(arg, report, node_vars, edge_vars)
            return
        if isinstance(expr, (IsNull, ExistsExpression)):
            self._lint_expression(expr.operand, report, node_vars, edge_vars)
            return
        if isinstance(expr, InList):
            self._lint_expression(expr.needle, report, node_vars, edge_vars)
            self._lint_expression(expr.haystack, report, node_vars, edge_vars)
            return
        if isinstance(expr, (StringPredicate, RegexMatch)):
            self._lint_expression(expr.left, report, node_vars, edge_vars)
            self._lint_expression(expr.right, report, node_vars, edge_vars)
            return
        if isinstance(expr, ListLiteral):
            for item in expr.items:
                self._lint_expression(item, report, node_vars, edge_vars)
            return
        if isinstance(expr, MapLiteral):
            for _key, value in expr.entries:
                self._lint_expression(value, report, node_vars, edge_vars)
            return
        if isinstance(expr, CaseExpression):
            if expr.operand is not None:
                self._lint_expression(expr.operand, report, node_vars, edge_vars)
            for condition, result in expr.whens:
                self._lint_expression(condition, report, node_vars, edge_vars)
                self._lint_expression(result, report, node_vars, edge_vars)
            if expr.default is not None:
                self._lint_expression(expr.default, report, node_vars, edge_vars)
            return
        if isinstance(expr, LabelPredicate):
            for label in expr.labels:
                if label not in self.schema.node_profiles:
                    report.issues.append(
                        LintIssue(
                            ErrorCategory.HALLUCINATED_PROPERTY,
                            f"unknown node label :{label}",
                            subject=label,
                        )
                    )
            return
        if isinstance(expr, (ListIndex,)):
            self._lint_expression(expr.subject, report, node_vars, edge_vars)
            self._lint_expression(expr.index, report, node_vars, edge_vars)
            return
        if isinstance(expr, ListSlice):
            self._lint_expression(expr.subject, report, node_vars, edge_vars)
            return
        if isinstance(expr, ListComprehension):
            self._lint_expression(expr.source, report, node_vars, edge_vars)
            if expr.predicate is not None:
                self._lint_expression(
                    expr.predicate, report, node_vars, edge_vars
                )
            if expr.projection is not None:
                self._lint_expression(
                    expr.projection, report, node_vars, edge_vars
                )
            return
        if isinstance(expr, PatternExpression):
            self._lint_pattern(expr.pattern, report, node_vars, edge_vars)
            return
        # Literal, Variable, Parameter: nothing to check

    @staticmethod
    def _is_regex_equality(expr: BinaryOp) -> bool:
        right = expr.right
        return isinstance(right, Literal) and isinstance(
            right.value, str
        ) and looks_like_regex(right.value)


def lint(query_text: str, schema: GraphSchema) -> LintReport:
    """Lint ``query_text`` against ``schema``."""
    return Linter(schema).lint(query_text)
