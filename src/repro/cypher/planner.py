"""Cost-based query planner for the Cypher subset.

System-R in miniature, specialised for the rule-mining hot path (three
count queries per mined rule, repeated across the experiment grid):

* **cardinality estimation** from the :class:`repro.graph.GraphCatalog`
  (per-label counts, per-(label, property) distinct/most-common-value
  sketches, per-edge-label fan-out/fan-in averages);
* **greedy join ordering** — MATCH patterns are reordered cheapest
  estimate first, and each path pattern may be traversed in reverse when
  that is cheaper (only for unnamed patterns, where the traversal order
  is unobservable);
* **seed selection** — each pattern starts from its cheapest access
  path: bound variable > property-index lookup > label scan > full scan;
* **predicate pushdown** — conjunctive WHERE predicates are decomposed
  and evaluated at the earliest DFS step where their variables are
  bound.  Only conjuncts that are statically *safe* (cannot raise: they
  produce booleans or null for every possible value) are pushed; the
  rest stay in a residual evaluated after matching, preserving the
  unplanned executor's ternary-logic results.  Because pruned rows skip
  residual evaluation, a planned query may *suppress* a runtime error
  the unplanned executor would have raised on a row that a pushed
  predicate already rejected — standard cost-based-planner semantics;
* **plan caching** keyed on ``(canonical signature, graph
  fingerprint)``; the graph's mutation epoch invalidates plans on write.

Plans are advisory: seeds fall back to label scans when a lookup value
is unindexable, and every candidate is re-verified by the matcher, so a
plan can make execution faster but never change its results.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro import obs
from repro.cypher.ast_nodes import (
    BinaryOp,
    CreateClause,
    Expression,
    InList,
    IsNull,
    LabelPredicate,
    ListLiteral,
    Literal,
    MatchClause,
    MergeClause,
    NodePattern,
    Parameter,
    PathPattern,
    PropertyAccess,
    Query,
    RelPattern,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)
from repro.cypher.matcher import SeedSpec
from repro.graph.statistics import GraphCatalog
from repro.graph.store import PropertyGraph

__all__ = [
    "ClausePlan",
    "PlanCache",
    "PlannedPattern",
    "QueryPlan",
    "QueryPlanner",
    "clear_plan_caches",
    "default_planner",
    "explain",
]

_FLIP = {"out": "in", "in": "out", "any": "any"}

#: variable kinds whose values are guaranteed node/edge-or-null at runtime
_ELEMENT_KINDS = ("node", "edge")


# ----------------------------------------------------------------------
# plan data model
# ----------------------------------------------------------------------
@dataclass
class PlannedPattern:
    """One ordered (and possibly reversed) pattern of a MATCH clause."""

    pattern: PathPattern
    seed: SeedSpec
    checks: Mapping[int, tuple[Expression, ...]]
    estimate: float
    reversed: bool
    source_index: int   # position of the pattern as written


@dataclass
class ClausePlan:
    """Execution plan for one MATCH clause.

    ``columnar`` marks the clause eligible for the CSR frontier path
    (every pattern free of variable-length relationships); like the
    rest of the plan it is advisory — both paths return identical rows.
    """

    steps: tuple[PlannedPattern, ...]
    prefilter: tuple[Expression, ...]
    residual: Optional[Expression]
    estimate: float
    columnar: bool = False


@dataclass
class QueryPlan:
    """Plans for every MATCH clause of a query, positionally keyed."""

    signature: str
    fingerprint: tuple
    clause_plans: dict[tuple[int, int], ClausePlan] = field(
        default_factory=dict
    )

    def clause_plan(
        self, branch: int, clause_index: int
    ) -> Optional[ClausePlan]:
        return self.clause_plans.get((branch, clause_index))


# ----------------------------------------------------------------------
# conjunct analysis
# ----------------------------------------------------------------------
def _flatten_and(expr: Optional[Expression]) -> list[Expression]:
    """Split a WHERE expression on top-level ANDs, in source order."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _combine_and(conjuncts: list[Expression]) -> Optional[Expression]:
    """Left-associated AND of ``conjuncts`` (None when empty)."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = BinaryOp(op="AND", left=combined, right=conjunct)
    return combined


def _safe_value(
    expr: Expression, kinds: Mapping[str, str], names: set[str]
) -> bool:
    """True if ``expr`` evaluates without raising for any binding values.

    Collects referenced variable names into ``names`` as it goes.
    """
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, Variable):
        names.add(expr.name)
        return True
    if isinstance(expr, PropertyAccess):
        # property reads raise on scalar subjects; only node/edge-kind
        # variables (null included: null.prop is null) are safe
        subject = expr.subject
        if (
            isinstance(subject, Variable)
            and kinds.get(subject.name) in _ELEMENT_KINDS
        ):
            names.add(subject.name)
            return True
        return False
    if isinstance(expr, ListLiteral):
        return all(_safe_value(item, kinds, names) for item in expr.items)
    return False


def _safe_bool(
    expr: Expression, kinds: Mapping[str, str], names: set[str]
) -> bool:
    """True if ``expr`` always yields a boolean or null, never raising.

    Bare variables are excluded: their value can be non-boolean, which
    the unplanned AND evaluation reports as a type error we must not
    silently swallow.  Parameters are excluded because a missing one
    must keep raising with unplanned timing (only on matched rows).
    """
    if isinstance(expr, BinaryOp):
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return _safe_value(expr.left, kinds, names) and _safe_value(
                expr.right, kinds, names
            )
        if expr.op in ("AND", "OR", "XOR"):
            return _safe_bool(expr.left, kinds, names) and _safe_bool(
                expr.right, kinds, names
            )
        return False
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return _safe_bool(expr.operand, kinds, names)
    if isinstance(expr, IsNull):
        return _safe_value(expr.operand, kinds, names)
    if isinstance(expr, InList):
        return (
            _safe_value(expr.needle, kinds, names)
            and isinstance(expr.haystack, ListLiteral)
            and _safe_value(expr.haystack, kinds, names)
        )
    if isinstance(expr, StringPredicate):
        return _safe_value(expr.left, kinds, names) and _safe_value(
            expr.right, kinds, names
        )
    if isinstance(expr, LabelPredicate):
        subject = expr.subject
        if (
            isinstance(subject, Variable)
            and kinds.get(subject.name) == "node"
        ):
            names.add(subject.name)
            return True
        return False
    return False


def _pattern_kinds(pattern: PathPattern) -> dict[str, str]:
    kinds: dict[str, str] = {}
    if pattern.variable:
        kinds[pattern.variable] = "path"
    for element in pattern.elements:
        if not element.variable:
            continue
        if isinstance(element, NodePattern):
            kind = "node"
        elif element.is_variable_length:
            kind = "list"
        else:
            kind = "edge"
        previous = kinds.get(element.variable)
        kinds[element.variable] = (
            kind if previous in (None, kind) else "unknown"
        )
    return kinds


def _merge_kinds(into: dict[str, str], new: Mapping[str, str]) -> None:
    for name, kind in new.items():
        previous = into.get(name)
        into[name] = kind if previous in (None, kind) else "unknown"


def _kinds_before_clauses(query: SingleQuery) -> list[dict[str, str]]:
    """Static variable-kind environment at the start of each clause."""
    kinds: dict[str, str] = {}
    snapshots: list[dict[str, str]] = []
    for clause in query.clauses:
        snapshots.append(dict(kinds))
        if isinstance(clause, MatchClause):
            for pattern in clause.patterns:
                _merge_kinds(kinds, _pattern_kinds(pattern))
        elif isinstance(clause, CreateClause):
            for pattern in clause.patterns:
                _merge_kinds(kinds, _pattern_kinds(pattern))
        elif isinstance(clause, MergeClause):
            _merge_kinds(kinds, _pattern_kinds(clause.pattern))
        elif isinstance(clause, UnwindClause):
            kinds[clause.alias] = "unknown"
        elif isinstance(clause, WithClause):
            if not clause.star:
                projected: dict[str, str] = {}
                for item in clause.items:
                    expr = item.expression
                    if isinstance(expr, Variable):
                        projected[item.column_name] = kinds.get(
                            expr.name, "unknown"
                        )
                    else:
                        projected[item.column_name] = "unknown"
                kinds = projected
        # SET / REMOVE / DELETE / RETURN leave the environment unchanged
    return snapshots


def _index_candidates(
    conjuncts: list[Expression],
) -> dict[str, list[tuple[str, Expression]]]:
    """``var -> [(property key, value expr)]`` equality conjuncts usable
    as property-index seeds (Literal or Parameter values only)."""
    candidates: dict[str, list[tuple[str, Expression]]] = {}
    for conjunct in conjuncts:
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            continue
        for lhs, rhs in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(lhs, PropertyAccess)
                and isinstance(lhs.subject, Variable)
                and isinstance(rhs, (Literal, Parameter))
            ):
                candidates.setdefault(lhs.subject.name, []).append(
                    (lhs.key, rhs)
                )
    return candidates


# ----------------------------------------------------------------------
# cardinality estimation
# ----------------------------------------------------------------------
def _eq_estimate(
    catalog: GraphCatalog, label: str, key: str, value_expr: Expression
) -> float:
    """Estimated matches of a property-index lookup on one label."""
    if isinstance(value_expr, Literal):
        return catalog.estimate_property_eq(label, key, value_expr.value)
    # parameter value unknown at plan time: assume an average bucket
    sketch = catalog.property_sketches.get((label, key))
    if sketch is None or sketch.distinct == 0:
        return 1.0
    return sketch.present / sketch.distinct


def _choose_seed(
    first: NodePattern,
    bound: set[str],
    catalog: GraphCatalog,
    eq_candidates: Mapping[str, list[tuple[str, Expression]]],
) -> tuple[SeedSpec, float, float]:
    """Pick the cheapest access path: ``(seed, source_size, rows)``."""
    if first.variable and first.variable in bound:
        return SeedSpec(kind="bound"), 1.0, 1.0

    label_sel = 1.0
    for label in first.labels:
        label_sel *= catalog.label_selectivity(label)
    map_sel = 1.0
    if first.labels:
        for key, value_expr in first.properties:
            if isinstance(value_expr, Literal):
                map_sel *= catalog.property_selectivity(
                    first.labels[0], key, value_expr.value
                )

    options: list[tuple[float, float, int, SeedSpec]] = []
    if first.labels:
        best_label = min(first.labels, key=catalog.label_count)
        source = float(catalog.label_count(best_label))
        rows = catalog.estimate_label_scan(first.labels) * map_sel
        options.append(
            (source, rows, 1, SeedSpec(kind="label", label=best_label))
        )
        # property-index lookups: inline map entries with literal
        # values, then pushed-down equality conjuncts on the seed var
        for label in first.labels:
            for key, value_expr in first.properties:
                if not isinstance(value_expr, Literal):
                    continue
                estimate = catalog.estimate_property_eq(
                    label, key, value_expr.value
                )
                options.append((
                    estimate, estimate, 0,
                    SeedSpec(
                        kind="index", label=label, key=key,
                        value=value_expr,
                    ),
                ))
            if first.variable:
                for key, value_expr in eq_candidates.get(
                    first.variable, ()
                ):
                    estimate = _eq_estimate(catalog, label, key, value_expr)
                    options.append((
                        estimate, estimate, 0,
                        SeedSpec(
                            kind="index", label=label, key=key,
                            value=value_expr,
                        ),
                    ))
    else:
        source = float(catalog.node_count)
        options.append((source, source, 1, SeedSpec(kind="scan")))

    source, rows, _rank, seed = min(
        options, key=lambda option: (option[0], option[1], option[2])
    )
    return seed, source, rows


def _fan_total(catalog: GraphCatalog, rel: RelPattern) -> float:
    """Average branching factor of one relationship element (summed over
    the hop range for variable-length patterns)."""
    fan = catalog.avg_fanout(rel.types, rel.direction)
    if not rel.is_variable_length:
        return fan
    total = 1.0 if rel.min_hops == 0 else 0.0
    power = 1.0
    for hops in range(1, rel.max_hops + 1):
        power *= fan
        if hops >= rel.min_hops:
            total += power
        if power == 0.0:
            break
    return total


def _estimate_oriented(
    pattern: PathPattern,
    bound: set[str],
    catalog: GraphCatalog,
    eq_candidates: Mapping[str, list[tuple[str, Expression]]],
) -> tuple[float, float, SeedSpec]:
    """Estimate ``(result_rows, work)`` for one traversal orientation."""
    elements = pattern.elements
    first = elements[0]
    seed, source, rows = _choose_seed(first, bound, catalog, eq_candidates)
    cost = source
    running = set(bound)
    if first.variable:
        running.add(first.variable)
    index = 1
    while index < len(elements):
        rel: RelPattern = elements[index]        # type: ignore[assignment]
        node: NodePattern = elements[index + 1]  # type: ignore[assignment]
        expanded = rows * _fan_total(catalog, rel)
        cost += expanded
        if node.variable and node.variable in running:
            # joining back to an already-bound node: one target out of
            # the label's population
            population = (
                catalog.estimate_label_scan(node.labels)
                if node.labels
                else float(catalog.node_count)
            )
            selectivity = 1.0 / max(population, 1.0)
        else:
            selectivity = 1.0
            for label in node.labels:
                selectivity *= catalog.label_selectivity(label)
            if node.labels:
                for key, value_expr in node.properties:
                    if isinstance(value_expr, Literal):
                        selectivity *= catalog.property_selectivity(
                            node.labels[0], key, value_expr.value
                        )
        rows = expanded * selectivity
        if rel.variable:
            running.add(rel.variable)
        if node.variable:
            running.add(node.variable)
        index += 2
    return rows, cost, seed


def _reverse_pattern(pattern: PathPattern) -> PathPattern:
    flipped = []
    for element in reversed(pattern.elements):
        if isinstance(element, RelPattern):
            flipped.append(
                dataclasses.replace(
                    element, direction=_FLIP[element.direction]
                )
            )
        else:
            flipped.append(element)
    return PathPattern(variable=None, elements=tuple(flipped))


def _orientations(
    pattern: PathPattern,
) -> Iterator[tuple[PathPattern, bool]]:
    """Forward always; reversed only when unobservable (no path name —
    the trail order is visible through it — and no bound variable-length
    relationship, whose edge-list order is visible)."""
    yield pattern, False
    if pattern.variable is not None or len(pattern.elements) < 2:
        return
    for element in pattern.elements:
        if (
            isinstance(element, RelPattern)
            and element.is_variable_length
            and element.variable
        ):
            return
    yield _reverse_pattern(pattern), True


# ----------------------------------------------------------------------
# clause planning
# ----------------------------------------------------------------------
def _plan_match_clause(
    clause: MatchClause,
    bound_kinds: dict[str, str],
    catalog: GraphCatalog,
) -> ClausePlan:
    kinds = dict(bound_kinds)
    element_vars: set[str] = set()
    for pattern in clause.patterns:
        _merge_kinds(kinds, _pattern_kinds(pattern))
        for element in pattern.elements:
            if element.variable:
                element_vars.add(element.variable)

    conjuncts = _flatten_and(clause.where)
    bound_before = set(bound_kinds)
    prefilter: list[Expression] = []
    pushable: list[tuple[Expression, frozenset[str]]] = []
    residual: list[Expression] = []
    multi = len(conjuncts) > 1
    for conjunct in conjuncts:
        names: set[str] = set()
        # a lone conjunct can be any boolean-ish expression; inside an
        # AND a non-boolean raises, so single-conjunct WHEREs keep the
        # same safety rules for simplicity
        if not _safe_bool(conjunct, kinds, names):
            residual.append(conjunct)
            continue
        if names <= bound_before:
            prefilter.append(conjunct)
        elif names <= bound_before | element_vars:
            pushable.append((conjunct, frozenset(names)))
        else:
            residual.append(conjunct)
    del multi

    eq_candidates = _index_candidates(conjuncts)

    remaining = list(enumerate(clause.patterns))
    bound = set(bound_before)
    steps: list[PlannedPattern] = []
    unassigned = list(pushable)
    total_rows = 1.0
    while remaining:
        best = None
        for position, (source_index, pattern) in enumerate(remaining):
            # both orientations describe the same result set, so their
            # row estimates differ only by estimator asymmetry: the
            # orientation is chosen by cost (the work actually done)
            # and the sharper of the two row estimates stands for the
            # pattern when ordering across patterns
            choice = None
            pattern_rows = None
            for oriented, is_reversed in _orientations(pattern):
                rows, cost, seed = _estimate_oriented(
                    oriented, bound, catalog, eq_candidates
                )
                pattern_rows = (
                    rows if pattern_rows is None
                    else min(pattern_rows, rows)
                )
                orientation_rank = (cost, rows, is_reversed)
                if choice is None or orientation_rank < choice[0]:
                    choice = (orientation_rank, oriented, is_reversed, seed)
            _orank, oriented, is_reversed, seed = choice
            rank = (pattern_rows, _orank[0], source_index)
            if best is None or rank < best[0]:
                best = (
                    rank, position, oriented, is_reversed, seed,
                    pattern_rows, source_index,
                )
        _rank, position, oriented, is_reversed, seed, rows, source_index = best
        remaining.pop(position)

        checks: dict[int, list[Expression]] = {}
        running = set(bound)
        for element_index, element in enumerate(oriented.elements):
            if element.variable:
                running.add(element.variable)
            if element_index % 2 == 1:
                continue  # relationship vars bind with the next node
            placed = [
                entry for entry in unassigned if entry[1] <= running
            ]
            if placed:
                checks[element_index] = [entry[0] for entry in placed]
                unassigned = [
                    entry for entry in unassigned if entry not in placed
                ]
        bound |= {
            element.variable
            for element in oriented.elements
            if element.variable
        }
        steps.append(PlannedPattern(
            pattern=oriented,
            seed=seed,
            checks={
                index: tuple(predicates)
                for index, predicates in checks.items()
            },
            estimate=rows,
            reversed=is_reversed,
            source_index=source_index,
        ))
        total_rows *= max(rows, 0.0)

    # safety net: anything the position scan could not place is
    # evaluated after matching instead
    residual.extend(entry[0] for entry in unassigned)

    return ClausePlan(
        steps=tuple(steps),
        prefilter=tuple(prefilter),
        residual=_combine_and(residual),
        estimate=total_rows,
        columnar=all(
            not (
                isinstance(element, RelPattern)
                and element.is_variable_length
            )
            for step in steps
            for element in step.pattern.elements
        ),
    )


def _plan_branch(
    branch_index: int,
    query: SingleQuery,
    catalog: GraphCatalog,
    out: dict[tuple[int, int], ClausePlan],
) -> None:
    snapshots = _kinds_before_clauses(query)
    for clause_index, clause in enumerate(query.clauses):
        if isinstance(clause, MatchClause):
            out[(branch_index, clause_index)] = _plan_match_clause(
                clause, snapshots[clause_index], catalog
            )


# ----------------------------------------------------------------------
# signatures and the plan cache
# ----------------------------------------------------------------------
_SIGNATURE_LOCK = threading.Lock()
_SIGNATURES: "OrderedDict[Query, str]" = OrderedDict()
_SIGNATURE_CACHE_SIZE = 512


def _signature(query: Query) -> str:
    """Memoized canonical signature (alpha-renamed pattern normal form).

    ``repro.analysis`` sits above this layer, so it is imported lazily —
    the executor reaches the planner first, never the other way around.
    """
    try:
        with _SIGNATURE_LOCK:
            cached = _SIGNATURES.get(query)
            if cached is not None:
                _SIGNATURES.move_to_end(query)
                return cached
    except TypeError:
        return "unhashable"
    from repro import analysis

    try:
        signature = analysis.canonical_signature(query)
    except Exception:
        signature = "unsigned"
    with _SIGNATURE_LOCK:
        _SIGNATURES[query] = signature
        while len(_SIGNATURES) > _SIGNATURE_CACHE_SIZE:
            _SIGNATURES.popitem(last=False)
    return signature


class PlanCache:
    """Thread-safe LRU of built plans.

    Keyed on ``(canonical signature, graph fingerprint)``; within a key,
    reuse additionally requires the *exact* query AST — two alpha-variant
    queries share a signature but differ in observable column names, so
    their plans (which embed the ASTs) are not interchangeable.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, dict[Query, QueryPlan]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple, query: Query) -> Optional[QueryPlan]:
        with self._lock:
            variants = self._entries.get(key)
            plan = None if variants is None else variants.get(query)
            if plan is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return plan

    def put(self, key: tuple, query: Query, plan: QueryPlan) -> None:
        with self._lock:
            variants = self._entries.setdefault(key, {})
            variants[query] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


# ----------------------------------------------------------------------
# planner facade
# ----------------------------------------------------------------------
class QueryPlanner:
    """Builds (and caches) :class:`QueryPlan` objects for queries."""

    def __init__(self, cache: Optional[PlanCache] = None) -> None:
        self.cache = cache

    def plan(self, query: Query, graph: PropertyGraph) -> QueryPlan:
        signature = _signature(query)
        fingerprint = graph.fingerprint()
        key = (signature, fingerprint)
        cacheable = signature not in ("unhashable", "unsigned")
        if self.cache is not None and cacheable:
            cached = self.cache.get(key, query)
            if cached is not None:
                obs.inc("planner.cache_hits")
                return cached
        catalog = graph.catalog()
        clause_plans: dict[tuple[int, int], ClausePlan] = {}
        if isinstance(query, UnionQuery):
            for branch_index, sub in enumerate(query.queries):
                _plan_branch(branch_index, sub, catalog, clause_plans)
        else:
            _plan_branch(0, query, catalog, clause_plans)
        plan = QueryPlan(
            signature=signature,
            fingerprint=fingerprint,
            clause_plans=clause_plans,
        )
        obs.inc("planner.plans")
        if self.cache is not None and cacheable:
            self.cache.put(key, query, plan)
        return plan


_GLOBAL_CACHE = PlanCache()
_DEFAULT_PLANNER = QueryPlanner(cache=_GLOBAL_CACHE)


def default_planner() -> QueryPlanner:
    """The process-wide planner sharing one plan cache."""
    return _DEFAULT_PLANNER


def clear_plan_caches() -> None:
    """Reset the global plan + signature caches (tests, perf gate)."""
    _GLOBAL_CACHE.clear()
    with _SIGNATURE_LOCK:
        _SIGNATURES.clear()


# ----------------------------------------------------------------------
# EXPLAIN rendering
# ----------------------------------------------------------------------
def _describe_seed(step: PlannedPattern) -> str:
    seed = step.seed
    first = step.pattern.elements[0]
    name = first.variable or "_"
    if seed.kind == "bound":
        return f"bound variable ({name})"
    if seed.kind == "index":
        from repro.cypher.render import render_expression

        value = render_expression(seed.value)
        return f"property index {seed.label}.{seed.key} = {value}"
    if seed.kind == "label":
        return f"label scan :{seed.label}"
    return "all-nodes scan"


def explain(
    query: Query,
    graph: PropertyGraph,
    planner: Optional[QueryPlanner] = None,
) -> str:
    """Render an EXPLAIN-style tree of the plan for ``query``."""
    from repro.cypher.render import (
        render_expression,
        render_path_pattern,
    )

    planner = planner if planner is not None else default_planner()
    plan = planner.plan(query, graph)
    catalog = graph.catalog()
    lines = [
        f"QUERY PLAN  signature={plan.signature}  "
        f"graph={graph.name} (nodes={catalog.node_count}, "
        f"edges={catalog.edge_count}, epoch={graph.epoch})"
    ]
    branches = (
        query.queries if isinstance(query, UnionQuery) else (query,)
    )
    for branch_index, branch in enumerate(branches):
        if isinstance(query, UnionQuery):
            lines.append(f"union branch {branch_index + 1}")
        for clause_index, clause in enumerate(branch.clauses):
            clause_plan = plan.clause_plan(branch_index, clause_index)
            if clause_plan is None:
                continue
            keyword = "OPTIONAL MATCH" if clause.optional else "MATCH"
            lines.append(
                f"+- {keyword} (clause {clause_index + 1}, "
                f"estimated rows ~{clause_plan.estimate:.1f})"
            )
            columnar_active = clause_plan.columnar and getattr(
                graph, "columnar_enabled", False
            )
            lines.append(
                "|  path: columnar csr frontier"
                if columnar_active
                else "|  path: legacy object walk"
            )
            for conjunct in clause_plan.prefilter:
                lines.append(
                    f"|  prefilter: {render_expression(conjunct)}"
                )
            for order, step in enumerate(clause_plan.steps, start=1):
                arrow = " (reversed)" if step.reversed else ""
                lines.append(
                    f"|  step {order}: "
                    f"{render_path_pattern(step.pattern)}{arrow} "
                    f"~{step.estimate:.1f} rows"
                )
                lines.append(f"|    seed: {_describe_seed(step)}")
                for element_index in sorted(step.checks):
                    rendered = ", ".join(
                        render_expression(predicate)
                        for predicate in step.checks[element_index]
                    )
                    lines.append(
                        f"|    pushed at element {element_index}: "
                        f"{rendered}"
                    )
            if clause_plan.residual is not None:
                lines.append(
                    "|  residual filter: "
                    f"{render_expression(clause_plan.residual)}"
                )
    if len(lines) == 1:
        lines.append("+- no MATCH clauses (nothing to plan)")
    return "\n".join(lines)
