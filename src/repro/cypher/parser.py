"""Recursive-descent parser for the Cypher subset.

Grammar (informal)::

    query        := single_query (UNION [ALL] single_query)*
    single_query := reading_clause* RETURN projection
    reading      := [OPTIONAL] MATCH patterns [WHERE expr]
                  | UNWIND expr AS ident
                  | WITH projection [WHERE expr]
    patterns     := path_pattern (',' path_pattern)*
    path_pattern := [ident '='] node (rel node)*

Expression precedence, loosest first: OR, XOR, AND, NOT, comparison
(``= <> < <= > >= =~ IN STARTS/ENDS WITH CONTAINS IS [NOT] NULL`` and the
label predicate ``n:Label``), additive, multiplicative, power, unary,
postfix (property access / indexing), atom.
"""

from __future__ import annotations

from typing import Optional

from repro.cypher.ast_nodes import (
    BinaryOp,
    CaseExpression,
    CreateClause,
    DeleteClause,
    ExistsExpression,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LabelPredicate,
    ListComprehension,
    ListIndex,
    ListLiteral,
    ListSlice,
    Literal,
    MapLiteral,
    MatchClause,
    MergeClause,
    NodePattern,
    OrderItem,
    Parameter,
    PathPattern,
    PatternExpression,
    ProjectionItem,
    PropertyAccess,
    Query,
    RegexMatch,
    RelPattern,
    RemoveClause,
    RemoveItem,
    ReturnClause,
    SetClause,
    SetItem,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)
from repro.cypher.errors import CypherSyntaxError
from repro.cypher.lexer import tokenize
from repro.cypher.tokens import Token, TokenType

_COMPARISON_OPS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "<>",
    TokenType.LT: "<",
    TokenType.LTE: "<=",
    TokenType.GT: ">",
    TokenType.GTE: ">=",
}


class Parser:
    """Parses one query string into an AST."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self.current.type is token_type

    def _check_keyword(self, *words: str) -> bool:
        return self.current.is_keyword(*words)

    def _match(self, token_type: TokenType) -> Optional[Token]:
        if self._check(token_type):
            return self._advance()
        return None

    def _match_keyword(self, *words: str) -> Optional[Token]:
        if self._check_keyword(*words):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str) -> Token:
        if not self._check(token_type):
            raise CypherSyntaxError(
                f"expected {what}, found {self.current.text!r}",
                self.current.position,
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._check_keyword(word):
            raise CypherSyntaxError(
                f"expected {word}, found {self.current.text!r}",
                self.current.position,
            )
        return self._advance()

    def _expect_name(self, what: str = "identifier") -> str:
        # Names may collide with soft keywords ($limit, AS count, …);
        # accept both token kinds, keeping the original spelling.
        if self._check(TokenType.IDENT) or self._check(TokenType.KEYWORD):
            return self._advance().text
        raise CypherSyntaxError(
            f"expected {what}, found {self.current.text!r}",
            self.current.position,
        )

    def _source_slice(self, start_index: int, end_index: int) -> str:
        """Original source text spanned by tokens [start_index, end_index)."""
        if start_index >= len(self.tokens) or start_index >= end_index:
            return ""
        start_pos = self.tokens[start_index].position
        if end_index - 1 < len(self.tokens):
            last = self.tokens[end_index - 1]
        else:
            last = self.tokens[-1]
        end_pos = last.position + len(last.text)
        # string literals lost their quotes in the token text; widen to the
        # next token start instead when that happens
        if last.type is TokenType.STRING:
            end_pos = (
                self.tokens[end_index].position
                if end_index < len(self.tokens)
                else len(self.text)
            )
        return self.text[start_pos:end_pos].strip()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def parse(self) -> Query:
        queries = [self._parse_single_query()]
        union_all = False
        while self._match_keyword("UNION"):
            union_all = bool(self._match_keyword("ALL")) or union_all
            queries.append(self._parse_single_query())
        if not self._check(TokenType.EOF):
            raise CypherSyntaxError(
                f"unexpected input after query: {self.current.text!r}",
                self.current.position,
            )
        if len(queries) == 1:
            return queries[0]
        return UnionQuery(queries=tuple(queries), all=union_all)

    def _parse_single_query(self) -> SingleQuery:
        clauses: list = []
        has_write = False
        while True:
            if self._check_keyword("OPTIONAL") or self._check_keyword("MATCH"):
                clauses.append(self._parse_match())
            elif self._check_keyword("UNWIND"):
                clauses.append(self._parse_unwind())
            elif self._check_keyword("WITH"):
                clauses.append(self._parse_with())
            elif self._check_keyword("CREATE"):
                clauses.append(self._parse_create())
                has_write = True
            elif self._check_keyword("MERGE"):
                clauses.append(self._parse_merge())
                has_write = True
            elif self._check_keyword("SET"):
                clauses.append(self._parse_set())
                has_write = True
            elif self._check_keyword("REMOVE"):
                clauses.append(self._parse_remove())
                has_write = True
            elif self._check_keyword("DETACH") or self._check_keyword("DELETE"):
                clauses.append(self._parse_delete())
                has_write = True
            elif self._check_keyword("RETURN"):
                clauses.append(self._parse_return())
                break
            elif has_write and (
                self._check(TokenType.EOF)
                or self._check_keyword("UNION")
            ):
                break  # write queries need no RETURN
            else:
                raise CypherSyntaxError(
                    f"expected a clause keyword, found {self.current.text!r}",
                    self.current.position,
                )
        if not clauses:
            raise CypherSyntaxError("empty query")
        if not isinstance(clauses[-1], ReturnClause) and not has_write:
            raise CypherSyntaxError("query must end with RETURN")
        return SingleQuery(clauses=tuple(clauses))

    # ------------------------------------------------------------------
    # write clauses
    # ------------------------------------------------------------------
    def _parse_create(self) -> CreateClause:
        self._expect_keyword("CREATE")
        patterns = [self._parse_path_pattern()]
        while self._match(TokenType.COMMA):
            patterns.append(self._parse_path_pattern())
        return CreateClause(patterns=tuple(patterns))

    def _parse_merge(self) -> MergeClause:
        self._expect_keyword("MERGE")
        return MergeClause(pattern=self._parse_path_pattern())

    def _parse_set(self) -> SetClause:
        self._expect_keyword("SET")
        items = [self._parse_set_item()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_set_item())
        return SetClause(items=tuple(items))

    def _parse_set_item(self) -> SetItem:
        target = self._expect_name("variable")
        if self._match(TokenType.DOT):
            key = self._parse_label_name()
            self._expect(TokenType.EQ, "'=' in SET")
            return SetItem(target=target, key=key,
                           value=self._parse_expression())
        if self._match(TokenType.PLUS):
            self._expect(TokenType.EQ, "'+=' in SET")
            return SetItem(target=target, key=None,
                           value=self._parse_expression(), replace=False)
        if self._match(TokenType.EQ):
            return SetItem(target=target, key=None,
                           value=self._parse_expression(), replace=True)
        raise CypherSyntaxError(
            f"expected '.', '+=' or '=' in SET, found "
            f"{self.current.text!r}",
            self.current.position,
        )

    def _parse_remove(self) -> RemoveClause:
        self._expect_keyword("REMOVE")
        items = [self._parse_remove_item()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_remove_item())
        return RemoveClause(items=tuple(items))

    def _parse_remove_item(self) -> RemoveItem:
        target = self._expect_name("variable")
        self._expect(TokenType.DOT, "'.' in REMOVE")
        key = self._parse_label_name()
        return RemoveItem(target=target, key=key)

    def _parse_delete(self) -> DeleteClause:
        detach = bool(self._match_keyword("DETACH"))
        self._expect_keyword("DELETE")
        expressions = [self._parse_expression()]
        while self._match(TokenType.COMMA):
            expressions.append(self._parse_expression())
        return DeleteClause(expressions=tuple(expressions), detach=detach)

    # ------------------------------------------------------------------
    # clauses
    # ------------------------------------------------------------------
    def _parse_match(self) -> MatchClause:
        optional = bool(self._match_keyword("OPTIONAL"))
        self._expect_keyword("MATCH")
        patterns = [self._parse_path_pattern()]
        while self._match(TokenType.COMMA):
            patterns.append(self._parse_path_pattern())
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        return MatchClause(
            patterns=tuple(patterns), optional=optional, where=where
        )

    def _parse_unwind(self) -> UnwindClause:
        self._expect_keyword("UNWIND")
        expr = self._parse_expression()
        self._expect_keyword("AS")
        alias = self._expect_name("alias")
        return UnwindClause(expression=expr, alias=alias)

    def _parse_projection_items(
        self,
    ) -> tuple[bool, bool, tuple[ProjectionItem, ...]]:
        """Parse ``[DISTINCT] (* | item, item, ...)``; returns
        (distinct, star, items)."""
        distinct = bool(self._match_keyword("DISTINCT"))
        if self._match(TokenType.STAR):
            return distinct, True, ()
        items = [self._parse_projection_item()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_projection_item())
        return distinct, False, tuple(items)

    def _parse_projection_item(self) -> ProjectionItem:
        start = self.index
        expr = self._parse_expression()
        text = self._source_slice(start, self.index)
        alias = None
        if self._match_keyword("AS"):
            if self._check(TokenType.IDENT):
                alias = self._advance().text
            elif self._check(TokenType.KEYWORD):
                # Cypher allows soft keywords as aliases (e.g. AS count)
                alias = self._advance().text.lower()
            else:
                raise CypherSyntaxError(
                    f"expected alias, found {self.current.text!r}",
                    self.current.position,
                )
        return ProjectionItem(expression=expr, alias=alias, text=text)

    def _parse_order_skip_limit(
        self,
    ) -> tuple[tuple[OrderItem, ...], Optional[Expression], Optional[Expression]]:
        order_by: tuple[OrderItem, ...] = ()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            items = [self._parse_order_item()]
            while self._match(TokenType.COMMA):
                items.append(self._parse_order_item())
            order_by = tuple(items)
        skip = None
        if self._match_keyword("SKIP"):
            skip = self._parse_expression()
        limit = None
        if self._match_keyword("LIMIT"):
            limit = self._parse_expression()
        return order_by, skip, limit

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expression()
        descending = False
        if self._match_keyword("DESC", "DESCENDING"):
            descending = True
        elif self._match_keyword("ASC", "ASCENDING"):
            descending = False
        return OrderItem(expression=expr, descending=descending)

    def _parse_with(self) -> WithClause:
        self._expect_keyword("WITH")
        distinct, star, items = self._parse_projection_items()
        order_by, skip, limit = self._parse_order_skip_limit()
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        return WithClause(
            items=items, distinct=distinct, order_by=order_by,
            skip=skip, limit=limit, where=where, star=star,
        )

    def _parse_return(self) -> ReturnClause:
        self._expect_keyword("RETURN")
        distinct, star, items = self._parse_projection_items()
        order_by, skip, limit = self._parse_order_skip_limit()
        return ReturnClause(
            items=items, distinct=distinct, order_by=order_by,
            skip=skip, limit=limit, star=star,
        )

    # ------------------------------------------------------------------
    # patterns
    # ------------------------------------------------------------------
    def _parse_path_pattern(self) -> PathPattern:
        variable = None
        if (
            self._check(TokenType.IDENT)
            and self._peek(1).type is TokenType.EQ
        ):
            variable = self._advance().text
            self._advance()  # '='
        elements: list = [self._parse_node_pattern()]
        while self._check(TokenType.DASH) or self._check(TokenType.ARROW_LEFT):
            rel = self._parse_rel_pattern()
            node = self._parse_node_pattern()
            elements.extend([rel, node])
        return PathPattern(variable=variable, elements=tuple(elements))

    def _parse_node_pattern(self) -> NodePattern:
        self._expect(TokenType.LPAREN, "'(' starting a node pattern")
        variable = None
        if self._check(TokenType.IDENT):
            variable = self._advance().text
        labels: list[str] = []
        while self._match(TokenType.COLON):
            labels.append(self._parse_label_name())
        properties = ()
        if self._check(TokenType.LBRACE):
            properties = self._parse_property_map()
        self._expect(TokenType.RPAREN, "')' closing a node pattern")
        return NodePattern(
            variable=variable, labels=tuple(labels), properties=properties
        )

    def _parse_label_name(self) -> str:
        if self._check(TokenType.IDENT):
            return self._advance().text
        if self._check(TokenType.KEYWORD):
            # labels may collide with soft keywords (e.g. :Set)
            return self._advance().text
        raise CypherSyntaxError(
            f"expected label name, found {self.current.text!r}",
            self.current.position,
        )

    def _parse_property_map(self) -> tuple[tuple[str, Expression], ...]:
        self._expect(TokenType.LBRACE, "'{'")
        entries: list[tuple[str, Expression]] = []
        if not self._check(TokenType.RBRACE):
            entries.append(self._parse_property_entry())
            while self._match(TokenType.COMMA):
                entries.append(self._parse_property_entry())
        self._expect(TokenType.RBRACE, "'}'")
        return tuple(entries)

    def _parse_property_entry(self) -> tuple[str, Expression]:
        key = self._parse_label_name()
        self._expect(TokenType.COLON, "':' in property map")
        value = self._parse_expression()
        return key, value

    def _parse_rel_pattern(self) -> RelPattern:
        # opening: '-' or '<-'
        if self._match(TokenType.ARROW_LEFT):
            incoming = True
        else:
            self._expect(TokenType.DASH, "'-' starting a relationship")
            incoming = False

        variable = None
        types: list[str] = []
        properties: tuple[tuple[str, Expression], ...] = ()
        min_hops, max_hops = 1, 1
        if self._match(TokenType.LBRACKET):
            if self._check(TokenType.IDENT):
                variable = self._advance().text
            if self._match(TokenType.COLON):
                types.append(self._parse_label_name())
                while self._match(TokenType.PIPE):
                    self._match(TokenType.COLON)  # allow both :A|:B and :A|B
                    types.append(self._parse_label_name())
            if self._match(TokenType.STAR):
                min_hops, max_hops = self._parse_hop_range()
            if self._check(TokenType.LBRACE):
                properties = self._parse_property_map()
            self._expect(TokenType.RBRACKET, "']' closing a relationship")

        # closing: '->' / '-' / (already-consumed '<-' needs trailing '-')
        if incoming:
            self._expect(TokenType.DASH, "'-' closing an incoming relationship")
            direction = "in"
        elif self._match(TokenType.ARROW_RIGHT):
            direction = "out"
        elif self._match(TokenType.DASH):
            direction = "any"
        else:
            raise CypherSyntaxError(
                f"expected '->' or '-' after relationship detail, "
                f"found {self.current.text!r}",
                self.current.position,
            )
        return RelPattern(
            variable=variable, types=tuple(types), direction=direction,
            properties=properties, min_hops=min_hops, max_hops=max_hops,
        )

    def _parse_hop_range(self) -> tuple[int, int]:
        """Parse the ``*``, ``*n``, ``*m..n`` and ``*..n`` hop forms."""
        min_hops, max_hops = 1, 8  # '*' alone: bounded default
        if self._check(TokenType.INTEGER):
            min_hops = int(self._advance().text)
            max_hops = min_hops
        if self._match(TokenType.DOT):
            self._expect(TokenType.DOT, "'..' in hop range")
            if self._check(TokenType.INTEGER):
                max_hops = int(self._advance().text)
            else:
                max_hops = 8
        return min_hops, max_hops

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_xor()
        while self._match_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_xor())
        return left

    def _parse_xor(self) -> Expression:
        left = self._parse_and()
        while self._match_keyword("XOR"):
            left = BinaryOp("XOR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        while True:
            token_type = self.current.type
            if token_type in _COMPARISON_OPS:
                op = _COMPARISON_OPS[token_type]
                self._advance()
                left = BinaryOp(op, left, self._parse_additive())
            elif token_type is TokenType.REGEX_MATCH:
                self._advance()
                left = RegexMatch(left, self._parse_additive())
            elif self._check_keyword("IN"):
                self._advance()
                left = InList(left, self._parse_additive())
            elif self._check_keyword("STARTS"):
                self._advance()
                self._expect_keyword("WITH")
                left = StringPredicate("STARTS WITH", left, self._parse_additive())
            elif self._check_keyword("ENDS"):
                self._advance()
                self._expect_keyword("WITH")
                left = StringPredicate("ENDS WITH", left, self._parse_additive())
            elif self._check_keyword("CONTAINS"):
                self._advance()
                left = StringPredicate("CONTAINS", left, self._parse_additive())
            elif self._check_keyword("IS"):
                self._advance()
                negated = bool(self._match_keyword("NOT"))
                self._expect_keyword("NULL")
                left = IsNull(left, negated=negated)
            else:
                return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            if self._match(TokenType.PLUS):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self._check(TokenType.DASH) and not self._is_pattern_continuation():
                self._advance()
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _is_pattern_continuation(self) -> bool:
        """A DASH directly followed by '[' begins a relationship pattern
        (pattern expressions inside WHERE); otherwise it is subtraction."""
        return self._peek(1).type is TokenType.LBRACKET

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_power()
        while True:
            if self._match(TokenType.STAR):
                left = BinaryOp("*", left, self._parse_power())
            elif self._match(TokenType.SLASH):
                left = BinaryOp("/", left, self._parse_power())
            elif self._match(TokenType.PERCENT):
                left = BinaryOp("%", left, self._parse_power())
            else:
                return left

    def _parse_power(self) -> Expression:
        left = self._parse_unary()
        if self._match(TokenType.CARET):
            return BinaryOp("^", left, self._parse_power())
        return left

    def _parse_unary(self) -> Expression:
        if self._match(TokenType.DASH):
            return UnaryOp("-", self._parse_unary())
        if self._match(TokenType.PLUS):
            return UnaryOp("+", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        expr = self._parse_atom()
        while True:
            if (
                self._check(TokenType.DOT)
                and self._peek(1).type is not TokenType.DOT
            ):
                self._advance()
                key = self._parse_label_name()
                expr = PropertyAccess(expr, key)
            elif self._check(TokenType.LBRACKET):
                self._advance()
                expr = self._parse_index_or_slice(expr)
            elif (
                self._check(TokenType.COLON)
                and isinstance(expr, Variable)
            ):
                labels: list[str] = []
                while self._match(TokenType.COLON):
                    labels.append(self._parse_label_name())
                expr = LabelPredicate(expr, tuple(labels))
            else:
                return expr

    def _parse_index_or_slice(self, subject: Expression) -> Expression:
        start: Optional[Expression] = None
        end: Optional[Expression] = None
        if not self._check(TokenType.DOT) and not self._check(TokenType.RBRACKET):
            start = self._parse_expression()
        if self._match(TokenType.DOT):
            self._expect(TokenType.DOT, "'..' in slice")
            if not self._check(TokenType.RBRACKET):
                end = self._parse_expression()
            self._expect(TokenType.RBRACKET, "']' closing a slice")
            return ListSlice(subject, start, end)
        self._expect(TokenType.RBRACKET, "']' closing an index")
        if start is None:
            raise CypherSyntaxError("empty index expression",
                                    self.current.position)
        return ListIndex(subject, start)

    # ------------------------------------------------------------------
    # atoms
    # ------------------------------------------------------------------
    def _parse_atom(self) -> Expression:
        token = self.current

        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.text)
        if token.type is TokenType.INTEGER:
            self._advance()
            return Literal(int(token.text))
        if token.type is TokenType.FLOAT:
            self._advance()
            return Literal(float(token.text))
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.type is TokenType.DOLLAR:
            self._advance()
            return Parameter(self._expect_name("parameter name"))
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            return self._parse_exists()
        if token.is_keyword("NOT"):
            self._advance()
            return UnaryOp("NOT", self._parse_not())
        if token.is_keyword("COUNT", "ALL"):
            # COUNT is not reserved in our keyword list, but guard anyway
            return self._parse_function_call(token.text.lower())
        if token.type is TokenType.LBRACKET:
            return self._parse_list_literal_or_comprehension()
        if token.type is TokenType.LBRACE:
            entries = self._parse_property_map()
            return MapLiteral(entries)
        if token.type is TokenType.LPAREN:
            return self._parse_paren_or_pattern()
        if token.type is TokenType.IDENT:
            if self._peek(1).type is TokenType.LPAREN:
                name = self._advance().text.lower()
                return self._parse_function_call(name)
            return Variable(self._advance().text)

        raise CypherSyntaxError(
            f"unexpected token {token.text!r} in expression", token.position
        )

    def _parse_function_call(self, name: str) -> Expression:
        self._expect(TokenType.LPAREN, "'(' opening function arguments")
        distinct = bool(self._match_keyword("DISTINCT"))
        if self._match(TokenType.STAR):
            self._expect(TokenType.RPAREN, "')' closing count(*)")
            return FunctionCall(name=name, args=(), distinct=distinct,
                                star=True)
        args: list[Expression] = []
        if not self._check(TokenType.RPAREN):
            args.append(self._parse_expression())
            while self._match(TokenType.COMMA):
                args.append(self._parse_expression())
        self._expect(TokenType.RPAREN, "')' closing function arguments")
        return FunctionCall(name=name, args=tuple(args), distinct=distinct)

    def _parse_case(self) -> Expression:
        self._expect_keyword("CASE")
        operand = None
        if not self._check_keyword("WHEN"):
            operand = self._parse_expression()
        whens: list[tuple[Expression, Expression]] = []
        while self._match_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            whens.append((condition, result))
        if not whens:
            raise CypherSyntaxError("CASE requires at least one WHEN",
                                    self.current.position)
        default = None
        if self._match_keyword("ELSE"):
            default = self._parse_expression()
        self._expect_keyword("END")
        return CaseExpression(operand=operand, whens=tuple(whens),
                              default=default)

    def _parse_exists(self) -> Expression:
        self._expect_keyword("EXISTS")
        if self._check(TokenType.LBRACE):
            # EXISTS { MATCH-less pattern }
            self._advance()
            pattern = self._parse_path_pattern()
            self._expect(TokenType.RBRACE, "'}' closing EXISTS")
            return PatternExpression(pattern)
        self._expect(TokenType.LPAREN, "'(' after EXISTS")
        # exists((a)-[:X]->(b)) — try the pattern form first
        if self._check(TokenType.LPAREN):
            saved = self.index
            try:
                pattern = self._parse_path_pattern()
                self._expect(TokenType.RPAREN, "')' closing EXISTS")
                return PatternExpression(pattern)
            except CypherSyntaxError:
                self.index = saved
        operand = self._parse_expression()
        self._expect(TokenType.RPAREN, "')' closing EXISTS")
        return ExistsExpression(operand)

    def _parse_list_literal_or_comprehension(self) -> Expression:
        self._expect(TokenType.LBRACKET, "'['")
        if self._check(TokenType.RBRACKET):
            self._advance()
            return ListLiteral(())
        # list comprehension: ident IN ...
        if (
            self._check(TokenType.IDENT)
            and self._peek(1).is_keyword("IN")
        ):
            variable = self._advance().text
            self._advance()  # IN
            source = self._parse_expression()
            predicate = None
            if self._match_keyword("WHERE"):
                predicate = self._parse_expression()
            projection = None
            if self._match(TokenType.PIPE):
                projection = self._parse_expression()
            self._expect(TokenType.RBRACKET, "']' closing a comprehension")
            return ListComprehension(
                variable=variable, source=source,
                predicate=predicate, projection=projection,
            )
        items = [self._parse_expression()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_expression())
        self._expect(TokenType.RBRACKET, "']' closing a list")
        return ListLiteral(tuple(items))

    def _parse_paren_or_pattern(self) -> Expression:
        """Disambiguate ``(expr)`` from a pattern expression like
        ``(a)-[:X]->(b)`` by attempting the pattern parse first and backing
        off if it does not continue with a relationship."""
        saved = self.index
        try:
            pattern = self._parse_path_pattern()
        except CypherSyntaxError:
            self.index = saved
        else:
            if len(pattern.elements) > 1:
                return PatternExpression(pattern)
            only = pattern.elements[0]
            if isinstance(only, NodePattern) and (only.labels or only.properties):
                # (n:Label) alone is still a valid existence predicate
                return PatternExpression(pattern)
            self.index = saved
        self._expect(TokenType.LPAREN, "'('")
        expr = self._parse_expression()
        self._expect(TokenType.RPAREN, "')'")
        return expr


def parse(text: str) -> Query:
    """Parse ``text`` into a :class:`~repro.cypher.ast_nodes.Query`."""
    if not text or not text.strip():
        raise CypherSyntaxError("empty query")
    return Parser(text.strip().rstrip(";")).parse()
