"""Expression evaluation with Cypher's ternary (null-aware) logic.

An :class:`EvalContext` carries the graph (needed for pattern predicates
and ``startNode``/``endNode``), query parameters, and the current row's
variable bindings.  Aggregates are *not* evaluated here — the executor
extracts them from projections and calls
:func:`repro.cypher.functions.aggregate` over grouped rows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.cypher.ast_nodes import (
    BinaryOp,
    CaseExpression,
    ExistsExpression,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LabelPredicate,
    ListComprehension,
    ListIndex,
    ListLiteral,
    ListSlice,
    Literal,
    MapLiteral,
    Parameter,
    PatternExpression,
    PropertyAccess,
    RegexMatch,
    StringPredicate,
    UnaryOp,
    Variable,
)
from repro.cypher.errors import (
    CypherSemanticError,
    CypherSyntaxError,
    CypherTypeError,
)
from repro.cypher.functions import call_scalar, is_aggregate
from repro.graph.model import Edge, Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.store import PropertyGraph


@dataclass
class EvalContext:
    """Evaluation environment for one row."""

    graph: "PropertyGraph"
    parameters: Mapping[str, object] = field(default_factory=dict)
    bindings: dict[str, object] = field(default_factory=dict)

    def child(self, bindings: dict[str, object]) -> "EvalContext":
        merged = dict(self.bindings)
        merged.update(bindings)
        return EvalContext(
            graph=self.graph, parameters=self.parameters, bindings=merged
        )


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compare(op: str, left: object, right: object) -> object:
    """Three-valued comparison: None operands (or incomparable types for
    ordering operators) yield None."""
    if left is None or right is None:
        return None
    if op == "=":
        return _equals(left, right)
    if op == "<>":
        result = _equals(left, right)
        return None if result is None else not result
    # ordering comparisons require mutually comparable operands
    comparable = (
        (_is_number(left) and _is_number(right))
        or (isinstance(left, str) and isinstance(right, str))
        or (isinstance(left, bool) and isinstance(right, bool))
        or (isinstance(left, list) and isinstance(right, list))
    )
    if not comparable:
        return None
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return None
    raise CypherSemanticError(f"unknown comparison operator {op!r}")


def _equals(left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if _is_number(left) and _is_number(right):
        return float(left) == float(right)
    if type(left) is not type(right) and not (
        isinstance(left, (Node, Edge)) and isinstance(right, (Node, Edge))
    ):
        if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
            pass  # list-vs-tuple equality is fine
        else:
            return False
    if isinstance(left, (Node, Edge)):
        return type(left) is type(right) and left.id == right.id
    if isinstance(left, (list, tuple)):
        if len(left) != len(right):
            return False
        results = [_equals(a, b) for a, b in zip(left, right)]
        if any(result is False for result in results):
            return False
        if any(result is None for result in results):
            return None
        return True
    return left == right


def _arith(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if op == "+":
        if isinstance(left, str) and isinstance(right, str):
            return left + right
        if isinstance(left, str) and _is_number(right):
            return left + str(right)
        if _is_number(left) and isinstance(right, str):
            return str(left) + right
        if isinstance(left, list) and isinstance(right, list):
            return left + right
        if isinstance(left, list):
            return left + [right]
        if _is_number(left) and _is_number(right):
            return left + right
        raise CypherTypeError(
            f"cannot add {type(left).__name__} and {type(right).__name__}"
        )
    if not (_is_number(left) and _is_number(right)):
        raise CypherTypeError(
            f"arithmetic {op!r} needs numbers, got "
            f"{type(left).__name__} and {type(right).__name__}"
        )
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise CypherTypeError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return left // right if left % right == 0 else left / right
        return left / right
    if op == "%":
        if right == 0:
            raise CypherTypeError("modulo by zero")
        return left % right
    if op == "^":
        return float(left) ** float(right)
    raise CypherSemanticError(f"unknown arithmetic operator {op!r}")


def _boolean(op: str, left: object, right: object) -> object:
    for value in (left, right):
        if value is not None and not isinstance(value, bool):
            raise CypherTypeError(
                f"{op} expects booleans, got {type(value).__name__}"
            )
    if op == "AND":
        if left is False or right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return False
    if op == "XOR":
        if left is None or right is None:
            return None
        return left != right
    raise CypherSemanticError(f"unknown boolean operator {op!r}")


def evaluate(expr: Expression, ctx: EvalContext) -> object:
    """Evaluate ``expr`` to a value under ``ctx``."""
    if isinstance(expr, Literal):
        return expr.value

    if isinstance(expr, Variable):
        if expr.name not in ctx.bindings:
            raise CypherSemanticError(f"variable {expr.name!r} is not bound")
        return ctx.bindings[expr.name]

    if isinstance(expr, Parameter):
        if expr.name not in ctx.parameters:
            raise CypherSemanticError(f"missing parameter ${expr.name}")
        return ctx.parameters[expr.name]

    if isinstance(expr, PropertyAccess):
        subject = evaluate(expr.subject, ctx)
        if subject is None:
            return None
        if isinstance(subject, (Node, Edge)):
            return subject.properties.get(expr.key)
        if isinstance(subject, Mapping):
            return subject.get(expr.key)
        raise CypherTypeError(
            f"cannot read property {expr.key!r} of {type(subject).__name__}"
        )

    if isinstance(expr, BinaryOp):
        if expr.op in ("AND", "OR", "XOR"):
            return _boolean(
                expr.op, evaluate(expr.left, ctx), evaluate(expr.right, ctx)
            )
        left = evaluate(expr.left, ctx)
        right = evaluate(expr.right, ctx)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(expr.op, left, right)
        return _arith(expr.op, left, right)

    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, ctx)
        if expr.op == "NOT":
            if value is None:
                return None
            if not isinstance(value, bool):
                raise CypherTypeError(
                    f"NOT expects a boolean, got {type(value).__name__}"
                )
            return not value
        if value is None:
            return None
        if not _is_number(value):
            raise CypherTypeError(
                f"unary {expr.op!r} expects a number, got {type(value).__name__}"
            )
        return -value if expr.op == "-" else +value

    if isinstance(expr, FunctionCall):
        if is_aggregate(expr.name):
            raise CypherSemanticError(
                f"aggregate {expr.name}() used outside a projection"
            )
        if expr.name in ("startnode", "endnode"):
            return _start_or_end_node(expr, ctx)
        args = [evaluate(arg, ctx) for arg in expr.args]
        return call_scalar(expr.name, args)

    if isinstance(expr, ListLiteral):
        return [evaluate(item, ctx) for item in expr.items]

    if isinstance(expr, MapLiteral):
        return {key: evaluate(value, ctx) for key, value in expr.entries}

    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, ctx)
        result = value is None
        return (not result) if expr.negated else result

    if isinstance(expr, InList):
        needle = evaluate(expr.needle, ctx)
        haystack = evaluate(expr.haystack, ctx)
        if haystack is None:
            return None
        if not isinstance(haystack, (list, tuple)):
            raise CypherTypeError("IN expects a list on its right side")
        if needle is None:
            return None if haystack else False
        saw_null = False
        for item in haystack:
            result = _equals(needle, item)
            if result is True:
                return True
            if result is None:
                saw_null = True
        return None if saw_null else False

    if isinstance(expr, StringPredicate):
        left = evaluate(expr.left, ctx)
        right = evaluate(expr.right, ctx)
        if left is None or right is None:
            return None
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        if expr.kind == "STARTS WITH":
            return left.startswith(right)
        if expr.kind == "ENDS WITH":
            return left.endswith(right)
        return right in left  # CONTAINS

    if isinstance(expr, RegexMatch):
        left = evaluate(expr.left, ctx)
        right = evaluate(expr.right, ctx)
        if left is None or right is None:
            return None
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        try:
            return re.fullmatch(right, left) is not None
        except re.error as exc:
            raise CypherSyntaxError(f"invalid regular expression: {exc}")

    if isinstance(expr, CaseExpression):
        if expr.operand is not None:
            subject = evaluate(expr.operand, ctx)
            for condition, result in expr.whens:
                if _equals(subject, evaluate(condition, ctx)) is True:
                    return evaluate(result, ctx)
        else:
            for condition, result in expr.whens:
                if evaluate(condition, ctx) is True:
                    return evaluate(result, ctx)
        return evaluate(expr.default, ctx) if expr.default else None

    if isinstance(expr, LabelPredicate):
        subject = evaluate(expr.subject, ctx)
        if subject is None:
            return None
        if not isinstance(subject, Node):
            raise CypherTypeError("label predicate expects a node")
        return all(label in subject.labels for label in expr.labels)

    if isinstance(expr, ListIndex):
        subject = evaluate(expr.subject, ctx)
        index = evaluate(expr.index, ctx)
        if subject is None or index is None:
            return None
        if isinstance(subject, Mapping) and isinstance(index, str):
            return subject.get(index)
        if isinstance(subject, (Node, Edge)) and isinstance(index, str):
            return subject.properties.get(index)
        if isinstance(subject, (list, tuple)):
            if not isinstance(index, int) or isinstance(index, bool):
                raise CypherTypeError("list index must be an integer")
            if -len(subject) <= index < len(subject):
                return subject[index]
            return None
        raise CypherTypeError(
            f"cannot index {type(subject).__name__} with "
            f"{type(index).__name__}"
        )

    if isinstance(expr, ListSlice):
        subject = evaluate(expr.subject, ctx)
        if subject is None:
            return None
        if not isinstance(subject, (list, tuple)):
            raise CypherTypeError("slice expects a list")
        start = evaluate(expr.start, ctx) if expr.start else None
        end = evaluate(expr.end, ctx) if expr.end else None
        return list(subject[start:end])

    if isinstance(expr, ListComprehension):
        source = evaluate(expr.source, ctx)
        if source is None:
            return None
        if not isinstance(source, (list, tuple)):
            raise CypherTypeError("list comprehension expects a list source")
        output = []
        for item in source:
            child = ctx.child({expr.variable: item})
            if expr.predicate is not None:
                if evaluate(expr.predicate, child) is not True:
                    continue
            output.append(
                evaluate(expr.projection, child)
                if expr.projection is not None
                else item
            )
        return output

    if isinstance(expr, ExistsExpression):
        if isinstance(expr.operand, PropertyAccess):
            return evaluate(expr.operand, ctx) is not None
        return evaluate(expr.operand, ctx) is not None

    if isinstance(expr, PatternExpression):
        # resolved lazily to avoid a circular import with the matcher
        from repro.cypher.matcher import pattern_exists

        return pattern_exists(ctx.graph, expr.pattern, ctx.bindings)

    raise CypherSemanticError(
        f"cannot evaluate expression node {type(expr).__name__}"
    )


def _start_or_end_node(expr: FunctionCall, ctx: EvalContext) -> object:
    if len(expr.args) != 1:
        raise CypherSemanticError(f"{expr.name}() takes exactly one argument")
    value = evaluate(expr.args[0], ctx)
    if value is None:
        return None
    if not isinstance(value, Edge):
        raise CypherTypeError(f"{expr.name}() expects a relationship")
    node_id = value.src if expr.name == "startnode" else value.dst
    return ctx.graph.node(node_id)


def contains_aggregate(expr: Expression) -> bool:
    """True if ``expr`` contains an aggregate function call anywhere."""
    if isinstance(expr, FunctionCall):
        if is_aggregate(expr.name):
            return True
        return any(contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, PropertyAccess):
        return contains_aggregate(expr.subject)
    if isinstance(expr, (IsNull,)):
        return contains_aggregate(expr.operand)
    if isinstance(expr, InList):
        return contains_aggregate(expr.needle) or contains_aggregate(expr.haystack)
    if isinstance(expr, (StringPredicate, RegexMatch)):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, ListLiteral):
        return any(contains_aggregate(item) for item in expr.items)
    if isinstance(expr, MapLiteral):
        return any(contains_aggregate(value) for _, value in expr.entries)
    if isinstance(expr, CaseExpression):
        parts: list[Expression] = []
        if expr.operand is not None:
            parts.append(expr.operand)
        for condition, result in expr.whens:
            parts.extend((condition, result))
        if expr.default is not None:
            parts.append(expr.default)
        return any(contains_aggregate(part) for part in parts)
    if isinstance(expr, ListIndex):
        return contains_aggregate(expr.subject) or contains_aggregate(expr.index)
    if isinstance(expr, ListSlice):
        subs = [expr.subject]
        if expr.start is not None:
            subs.append(expr.start)
        if expr.end is not None:
            subs.append(expr.end)
        return any(contains_aggregate(sub) for sub in subs)
    if isinstance(expr, ListComprehension):
        subs = [expr.source]
        if expr.predicate is not None:
            subs.append(expr.predicate)
        if expr.projection is not None:
            subs.append(expr.projection)
        return any(contains_aggregate(sub) for sub in subs)
    if isinstance(expr, ExistsExpression):
        return contains_aggregate(expr.operand)
    return False
