"""Clause pipeline execution: MATCH → WHERE → WITH → RETURN.

The executor streams *rows* (variable-binding dicts) through the query's
clauses.  Projections implement Cypher's implicit grouping: if any
projection item contains an aggregate, the non-aggregate items become the
grouping key and aggregates are computed per group (including the
one-empty-group rule for global aggregation over zero rows).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

from repro import obs
from repro.cypher.ast_nodes import (
    CreateClause,
    DeleteClause,
    Expression,
    FunctionCall,
    MatchClause,
    MergeClause,
    NodePattern,
    OrderItem,
    PathPattern,
    ProjectionItem,
    Query,
    RelPattern,
    RemoveClause,
    ReturnClause,
    SetClause,
    SingleQuery,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)
from repro.cypher.errors import (
    CypherError,
    CypherSemanticError,
    CypherTypeError,
)
from repro.cypher.evaluator import EvalContext, contains_aggregate, evaluate
from repro.cypher.functions import aggregate, is_aggregate
from repro.cypher.matcher import MatchStats, Path, match_patterns
from repro.cypher.parser import parse
from repro.graph.model import Edge, Node
from repro.graph.store import PropertyGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cypher.planner import ClausePlan, QueryPlan, QueryPlanner

Row = dict[str, object]

#: sentinel meaning "use the process-wide default planner"
_DEFAULT = object()


@dataclass
class QueryResult:
    """The outcome of executing one query."""

    columns: list[str]
    rows: list[Row]
    stats: dict[str, int] = None  # write counters, when a write ran

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = {}

    def values(self, column: str | None = None) -> list[object]:
        """All values of one column (default: the first)."""
        key = column if column is not None else self.columns[0]
        return [row[key] for row in self.rows]

    def scalar(self) -> object:
        """The single value of a 1x1 result (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][self.columns[0]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


def _canonical(value: object) -> object:
    """A hashable, equality-faithful key for grouping/DISTINCT."""
    if isinstance(value, Node):
        return ("__node__", value.id)
    if isinstance(value, Edge):
        return ("__edge__", value.id)
    if isinstance(value, Path):
        return ("__path__", tuple(getattr(e, "id", e) for e in value.elements))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, float) and value.is_integer():
        return int(value)  # 2.0 groups with 2, like Cypher
    return value


_TYPE_ORDER = {
    "bool": 0, "int": 1, "float": 1, "str": 2, "list": 3, "tuple": 3,
    "dict": 4, "Node": 5, "Edge": 6, "Path": 7,
}


def _sort_key(value: object) -> tuple:
    """Total order across mixed types; None sorts last (Cypher default)."""
    if value is None:
        return (99, 0)
    rank = _TYPE_ORDER.get(type(value).__name__, 50)
    if isinstance(value, bool):
        return (rank, int(value))
    if isinstance(value, (int, float)):
        return (rank, value)
    if isinstance(value, str):
        return (rank, value)
    if isinstance(value, (list, tuple)):
        return (rank, tuple(_sort_key(item) for item in value))
    if isinstance(value, (Node, Edge)):
        return (rank, value.id)
    return (rank, repr(value))


def _collect_aggregates(expr: Expression) -> list[FunctionCall]:
    """Outermost aggregate calls inside ``expr`` (document order)."""
    found: list[FunctionCall] = []

    def visit(node: Expression) -> None:
        if isinstance(node, FunctionCall) and is_aggregate(node.name):
            found.append(node)
            return  # aggregates cannot nest in Cypher
        for attr in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, attr)
            if isinstance(value, Expression):
                visit(value)
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Expression):
                        visit(item)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, Expression):
                                visit(sub)

    visit(expr)
    return found


class _AggregateScope(EvalContext):
    """EvalContext that answers aggregate calls from a precomputed map."""

    def __init__(
        self,
        base: EvalContext,
        aggregate_values: Mapping[FunctionCall, object],
    ) -> None:
        super().__init__(
            graph=base.graph, parameters=base.parameters,
            bindings=base.bindings,
        )
        self.aggregate_values = aggregate_values


def _evaluate_with_aggregates(
    expr: Expression,
    ctx: "_AggregateScope",
) -> object:
    """Evaluate, substituting precomputed values for aggregate subtrees."""
    if isinstance(expr, FunctionCall) and is_aggregate(expr.name):
        return ctx.aggregate_values[expr]
    # rebuild children through the normal evaluator by temporarily
    # swapping aggregate subtrees for literals
    from repro.cypher import ast_nodes as ast

    def substitute(node: Expression) -> Expression:
        if isinstance(node, FunctionCall) and is_aggregate(node.name):
            return ast.Literal(ctx.aggregate_values[node])
        if not hasattr(node, "__dataclass_fields__"):
            return node
        changes = {}
        for attr in node.__dataclass_fields__:
            value = getattr(node, attr)
            if isinstance(value, Expression):
                new = substitute(value)
                if new is not value:
                    changes[attr] = new
            elif isinstance(value, tuple):
                new_items = []
                changed = False
                for item in value:
                    if isinstance(item, Expression):
                        new = substitute(item)
                        changed = changed or (new is not item)
                        new_items.append(new)
                    elif isinstance(item, tuple):
                        new_sub = tuple(
                            substitute(s) if isinstance(s, Expression) else s
                            for s in item
                        )
                        changed = changed or (new_sub != item)
                        new_items.append(new_sub)
                    else:
                        new_items.append(item)
                if changed:
                    changes[attr] = tuple(new_items)
        if changes:
            import dataclasses

            return dataclasses.replace(node, **changes)
        return node

    return evaluate(substitute(expr), ctx)


class Executor:
    """Executes parsed queries against a property graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        parameters: Mapping[str, object] | None = None,
        planner: "QueryPlanner | None | object" = _DEFAULT,
        columnar: bool = True,
    ) -> None:
        self.graph = graph
        self.parameters = dict(parameters or {})
        if planner is _DEFAULT:
            from repro.cypher.planner import default_planner

            planner = default_planner()
        # escape hatch: Executor(graph, planner=None) runs unplanned
        self.planner: "QueryPlanner | None" = planner
        # escape hatch: columnar=False pins every clause to the legacy
        # matcher even when the graph has a CSR snapshot available
        self.columnar = columnar

    # ------------------------------------------------------------------
    def _plan(self, query: Query) -> "QueryPlan | None":
        if self.planner is None:
            return None
        try:
            return self.planner.plan(query, self.graph)
        except Exception:
            # a planning bug must never break a query; fall back to the
            # unplanned pipeline and record that it happened
            obs.inc("planner.errors")
            return None

    def run(self, query: Query) -> QueryResult:
        plan = self._plan(query)
        if isinstance(query, UnionQuery):
            return self._run_union(query, plan)
        return self._run_single(query, plan)

    def _run_union(
        self, query: UnionQuery, plan: "QueryPlan | None" = None
    ) -> QueryResult:
        results = [
            self._run_single(sub, plan, branch)
            for branch, sub in enumerate(query.queries)
        ]
        columns = results[0].columns
        for result in results[1:]:
            if result.columns != columns:
                raise CypherSemanticError(
                    "UNION branches must return the same columns"
                )
        rows: list[Row] = []
        seen: set = set()
        for result in results:
            for row in result.rows:
                if query.all:
                    rows.append(row)
                    continue
                key = tuple(_canonical(row[c]) for c in columns)
                if key not in seen:
                    seen.add(key)
                    rows.append(row)
        return QueryResult(columns=columns, rows=rows)

    def _run_single(
        self,
        query: SingleQuery,
        plan: "QueryPlan | None" = None,
        branch: int = 0,
    ) -> QueryResult:
        rows: list[Row] = [{}]
        columns: list[str] = []
        self._stats: dict[str, int] = {}
        for clause_index, clause in enumerate(query.clauses):
            if isinstance(clause, MatchClause):
                clause_plan = (
                    plan.clause_plan(branch, clause_index)
                    if plan is not None
                    else None
                )
                rows = list(self._apply_match(clause, rows, clause_plan))
            elif isinstance(clause, UnwindClause):
                rows = list(self._apply_unwind(clause, rows))
            elif isinstance(clause, CreateClause):
                rows = [self._apply_create(clause, row) for row in rows]
            elif isinstance(clause, MergeClause):
                rows = [self._apply_merge(clause, row) for row in rows]
            elif isinstance(clause, SetClause):
                rows = [self._apply_set(clause, row) for row in rows]
            elif isinstance(clause, RemoveClause):
                rows = [self._apply_remove(clause, row) for row in rows]
            elif isinstance(clause, DeleteClause):
                rows = self._apply_delete(clause, rows)
            elif isinstance(clause, WithClause):
                columns, rows = self._apply_projection(
                    clause.items, clause.distinct, clause.order_by,
                    clause.skip, clause.limit, rows, star=clause.star,
                )
                if clause.where is not None:
                    rows = [
                        row for row in rows
                        if evaluate(clause.where, self._ctx(row)) is True
                    ]
            elif isinstance(clause, ReturnClause):
                columns, rows = self._apply_projection(
                    clause.items, clause.distinct, clause.order_by,
                    clause.skip, clause.limit, rows, star=clause.star,
                )
            else:  # pragma: no cover - parser prevents this
                raise CypherSemanticError(
                    f"unsupported clause {type(clause).__name__}"
                )
        if query.return_clause is None:
            rows = []
        return QueryResult(columns=columns, rows=rows, stats=self._stats)

    # ------------------------------------------------------------------
    # write clauses
    # ------------------------------------------------------------------
    def _bump(self, counter: str, amount: int = 1) -> None:
        self._stats[counter] = self._stats.get(counter, 0) + amount

    def _fresh_id(self, prefix: str) -> str:
        counter = getattr(self, "_id_counter", 0)
        while True:
            counter += 1
            candidate = f"{prefix}{counter}"
            if not (self.graph.has_node(candidate)
                    or self.graph.has_edge(candidate)):
                self._id_counter = counter
                return candidate

    def _instantiate_pattern(
        self, pattern: PathPattern, row: Row
    ) -> Row:
        """Create every unbound element of ``pattern`` (CREATE semantics)."""
        new_row = dict(row)
        elements = pattern.elements
        current: Node | None = None
        index = 0
        while index < len(elements):
            element = elements[index]
            if isinstance(element, NodePattern):
                current = self._create_or_reuse_node(element, new_row)
                index += 1
                continue
            assert isinstance(element, RelPattern)
            next_node_pattern = elements[index + 1]
            next_node = self._create_or_reuse_node(
                next_node_pattern, new_row
            )
            self._create_edge(element, current, next_node, new_row)
            current = next_node
            index += 2
        return new_row

    def _create_or_reuse_node(
        self, pattern: NodePattern, row: Row
    ) -> Node:
        if pattern.variable and pattern.variable in row:
            bound = row[pattern.variable]
            if not isinstance(bound, Node):
                raise CypherSemanticError(
                    f"variable {pattern.variable!r} is not a node"
                )
            return bound
        properties = {
            key: evaluate(value, self._ctx(row))
            for key, value in pattern.properties
        }
        node = self.graph.add_node(
            self._fresh_id("_n"), pattern.labels, properties
        )
        self._bump("nodes_created")
        if pattern.variable:
            row[pattern.variable] = node
        return node

    def _create_edge(
        self, pattern: RelPattern, left: Node, right: Node, row: Row
    ) -> Edge:
        if len(pattern.types) != 1:
            raise CypherSemanticError(
                "CREATE requires exactly one relationship type"
            )
        if pattern.direction == "any":
            raise CypherSemanticError(
                "CREATE requires a directed relationship"
            )
        if pattern.is_variable_length:
            raise CypherSemanticError(
                "CREATE cannot use variable-length relationships"
            )
        src, dst = (left, right) if pattern.direction == "out" \
            else (right, left)
        properties = {
            key: evaluate(value, self._ctx(row))
            for key, value in pattern.properties
        }
        edge = self.graph.add_edge(
            self._fresh_id("_e"), pattern.types[0], src.id, dst.id,
            properties,
        )
        self._bump("relationships_created")
        if pattern.variable:
            row[pattern.variable] = edge
        return edge

    def _apply_create(self, clause: CreateClause, row: Row) -> Row:
        new_row = dict(row)
        for pattern in clause.patterns:
            new_row = self._instantiate_pattern(pattern, new_row)
        return new_row

    def _apply_merge(self, clause: MergeClause, row: Row) -> Row:
        matches = list(match_patterns(
            self.graph, (clause.pattern,), dict(row)
        ))
        if matches:
            return matches[0]
        return self._instantiate_pattern(clause.pattern, dict(row))

    def _apply_set(self, clause: SetClause, row: Row) -> Row:
        new_row = dict(row)
        for item in clause.items:
            element = new_row.get(item.target)
            if element is None:
                continue  # SET on null is a no-op, as in Cypher
            if not isinstance(element, (Node, Edge)):
                raise CypherSemanticError(
                    f"SET target {item.target!r} is not a node or "
                    "relationship"
                )
            value = evaluate(item.value, self._ctx(new_row))
            if item.key is not None:
                updated = self._write_property(element, item.key, value)
            else:
                if not isinstance(value, Mapping):
                    raise CypherTypeError("SET ... = / += expects a map")
                updated = element
                if item.replace:
                    for key in list(element.properties):
                        updated = self._write_property(updated, key, None)
                for key, entry in value.items():
                    updated = self._write_property(updated, key, entry)
            new_row[item.target] = updated
        return new_row

    def _write_property(self, element, key: str, value):
        """Set (or, for None, remove) one property; returns the fresh
        element snapshot."""
        if isinstance(element, Node):
            if value is None:
                updated = self.graph.remove_node_property(element.id, key)
            else:
                updated = self.graph.update_node(element.id, {key: value})
            self._bump("properties_set")
            return updated
        if value is None:
            # edges have no remove-property helper; rebuild in place
            remaining = {
                k: v for k, v in element.properties.items() if k != key
            }
            self.graph.remove_edge(element.id)
            updated = self.graph.add_edge(
                element.id, element.label, element.src, element.dst,
                remaining,
            )
        else:
            updated = self.graph.update_edge(element.id, {key: value})
        self._bump("properties_set")
        return updated

    def _apply_remove(self, clause: RemoveClause, row: Row) -> Row:
        new_row = dict(row)
        for item in clause.items:
            element = new_row.get(item.target)
            if element is None:
                continue
            if not isinstance(element, (Node, Edge)):
                raise CypherSemanticError(
                    f"REMOVE target {item.target!r} is not a node or "
                    "relationship"
                )
            new_row[item.target] = self._write_property(
                element, item.key, None
            )
        return new_row

    def _apply_delete(
        self, clause: DeleteClause, rows: list[Row]
    ) -> list[Row]:
        deleted_nodes: set[str] = set()
        deleted_edges: set[str] = set()
        for row in rows:
            for expression in clause.expressions:
                value = evaluate(expression, self._ctx(row))
                if value is None:
                    continue
                if isinstance(value, Edge):
                    if value.id not in deleted_edges \
                            and self.graph.has_edge(value.id):
                        self.graph.remove_edge(value.id)
                        deleted_edges.add(value.id)
                        self._bump("relationships_deleted")
                elif isinstance(value, Node):
                    if value.id in deleted_nodes \
                            or not self.graph.has_node(value.id):
                        continue
                    degree = self.graph.degree(value.id)
                    if degree and not clause.detach:
                        raise CypherSemanticError(
                            f"cannot delete node {value.id!r} with "
                            "relationships; use DETACH DELETE"
                        )
                    self._bump("relationships_deleted", degree)
                    self.graph.remove_node(value.id)
                    deleted_nodes.add(value.id)
                    self._bump("nodes_deleted")
                else:
                    raise CypherTypeError(
                        "DELETE expects nodes or relationships"
                    )
        return rows

    # ------------------------------------------------------------------
    def _ctx(self, row: Row) -> EvalContext:
        return EvalContext(
            graph=self.graph, parameters=self.parameters, bindings=row
        )

    def _apply_match(
        self,
        clause: MatchClause,
        rows: Iterable[Row],
        clause_plan: "ClausePlan | None" = None,
    ) -> Iterable[Row]:
        pattern_variables = self._pattern_variables(clause)
        stats = MatchStats()
        matched_total = 0
        try:
            for row in rows:
                matched_any = False
                for bindings in self._match_row(
                    clause, clause_plan, row, stats
                ):
                    matched_any = True
                    matched_total += 1
                    yield bindings
                if clause.optional and not matched_any:
                    padded = dict(row)
                    for variable in pattern_variables:
                        padded.setdefault(variable, None)
                    yield padded
        finally:
            obs.inc("matcher.seeds", stats.seeds)
            obs.inc("matcher.expansions", stats.expansions)
            obs.inc("matcher.visits", stats.visits)
            obs.inc("matcher.csr.frontier_expansions", stats.csr_frontiers)
            if clause_plan is not None:
                obs.observe("planner.estimated_rows", clause_plan.estimate)
                obs.observe("planner.actual_rows", matched_total)

    def _match_row(
        self,
        clause: MatchClause,
        clause_plan: "ClausePlan | None",
        row: Row,
        stats: MatchStats,
    ) -> Iterable[Row]:
        """Matches of one input row, WHERE already applied."""
        if clause_plan is not None:
            try:
                prefilter_ok = all(
                    evaluate(predicate, self._ctx(row)) is True
                    for predicate in clause_plan.prefilter
                )
            except CypherError:
                # legacy semantics raise such errors only on rows that
                # have at least one pattern match; re-run unplanned so
                # the error surfaces with identical timing (or not at
                # all, when nothing matches)
                clause_plan = None
            else:
                if not prefilter_ok:
                    return
                for bindings in match_patterns(
                    self.graph,
                    clause.patterns,
                    dict(row),
                    plan=clause_plan,
                    parameters=self.parameters,
                    stats=stats,
                    columnar=self.columnar,
                ):
                    if clause_plan.residual is not None:
                        residual = evaluate(
                            clause_plan.residual, self._ctx(bindings)
                        )
                        if residual is not True:
                            continue
                    yield bindings
                return
        for bindings in match_patterns(
            self.graph, clause.patterns, dict(row), stats=stats
        ):
            if clause.where is not None:
                if evaluate(clause.where, self._ctx(bindings)) is not True:
                    continue
            yield bindings

    @staticmethod
    def _pattern_variables(clause: MatchClause) -> list[str]:
        names: list[str] = []
        for pattern in clause.patterns:
            if pattern.variable:
                names.append(pattern.variable)
            for element in pattern.elements:
                if element.variable:
                    names.append(element.variable)
        return names

    def _apply_unwind(
        self, clause: UnwindClause, rows: Iterable[Row]
    ) -> Iterable[Row]:
        for row in rows:
            value = evaluate(clause.expression, self._ctx(row))
            if value is None:
                continue
            items = value if isinstance(value, (list, tuple)) else [value]
            for item in items:
                new_row = dict(row)
                new_row[clause.alias] = item
                yield new_row

    # ------------------------------------------------------------------
    def _apply_projection(
        self,
        items: Sequence[ProjectionItem],
        distinct: bool,
        order_by: Sequence[OrderItem],
        skip: Optional[Expression],
        limit: Optional[Expression],
        rows: list[Row],
        star: bool = False,
    ) -> tuple[list[str], list[Row]]:
        if star:
            variables = sorted({name for row in rows for name in row})
            items = tuple(
                ProjectionItem(expression=Variable(name), alias=None, text=name)
                for name in variables
            )

        has_aggregate = any(
            contains_aggregate(item.expression) for item in items
        )
        columns = [item.column_name for item in items]
        if len(set(columns)) != len(columns):
            raise CypherSemanticError("duplicate column names in projection")

        # each projected row keeps the source bindings it came from, so
        # ORDER BY can reference pre-projection variables (Cypher allows
        # ``RETURN t.name AS team ORDER BY t.name``)
        if has_aggregate:
            projected = [
                (row, dict(row)) for row in self._project_grouped(items, rows)
            ]
        else:
            projected = []
            for row in rows:
                out = {
                    item.column_name: evaluate(item.expression, self._ctx(row))
                    for item in items
                }
                projected.append((out, {**row, **out}))

        if distinct:
            unique: list[tuple[Row, Row]] = []
            seen: set = set()
            for pair in projected:
                key = tuple(_canonical(pair[0][c]) for c in columns)
                if key not in seen:
                    seen.add(key)
                    unique.append(pair)
            projected = unique

        if order_by:
            def order_key(pair: tuple[Row, Row]) -> tuple:
                keys = []
                for item in order_by:
                    value = self._eval_order_expr(item.expression, pair[1])
                    key = _sort_key(value)
                    keys.append(
                        _InvertedKey(key) if item.descending else key
                    )
                return tuple(keys)

            projected = sorted(projected, key=order_key)

        if skip is not None:
            count = self._non_negative_int(skip, "SKIP")
            projected = projected[count:]
        if limit is not None:
            count = self._non_negative_int(limit, "LIMIT")
            projected = projected[:count]
        return columns, [pair[0] for pair in projected]

    def _eval_order_expr(self, expr: Expression, row: Row) -> object:
        return evaluate(expr, self._ctx(row))

    def _non_negative_int(self, expr: Expression, what: str) -> int:
        value = evaluate(expr, self._ctx({}))
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise CypherTypeError(f"{what} must be a non-negative integer")
        return value

    def _project_grouped(
        self, items: Sequence[ProjectionItem], rows: list[Row]
    ) -> list[Row]:
        group_items = [
            item for item in items if not contains_aggregate(item.expression)
        ]
        aggregate_calls: list[FunctionCall] = []
        for item in items:
            aggregate_calls.extend(_collect_aggregates(item.expression))

        # group rows by the values of non-aggregate items
        groups: dict[tuple, tuple[Row, list[Row]]] = {}
        order: list[tuple] = []
        for row in rows:
            key_values = {
                item.column_name: evaluate(item.expression, self._ctx(row))
                for item in group_items
            }
            key = tuple(_canonical(key_values[i.column_name]) for i in group_items)
            if key not in groups:
                groups[key] = (key_values, [])
                order.append(key)
            groups[key][1].append(row)

        if not group_items and not rows:
            # global aggregation over empty input: one empty group
            groups[()] = ({}, [])
            order.append(())

        projected: list[Row] = []
        for key in order:
            key_values, member_rows = groups[key]
            agg_values: dict[FunctionCall, object] = {}
            for call in aggregate_calls:
                if call in agg_values:
                    continue
                agg_values[call] = self._evaluate_aggregate(call, member_rows)
            out: Row = {}
            for item in items:
                if contains_aggregate(item.expression):
                    scope = _AggregateScope(
                        self._ctx(member_rows[0] if member_rows else {}),
                        agg_values,
                    )
                    out[item.column_name] = _evaluate_with_aggregates(
                        item.expression, scope
                    )
                else:
                    out[item.column_name] = key_values[item.column_name]
            projected.append(out)
        return projected

    def _evaluate_aggregate(
        self, call: FunctionCall, rows: list[Row]
    ) -> object:
        if call.star:
            if call.name != "count":
                raise CypherSemanticError(f"{call.name}(*) is not valid")
            return len(rows)
        if len(call.args) != 1:
            raise CypherSemanticError(
                f"aggregate {call.name}() takes exactly one argument"
            )
        values = [evaluate(call.args[0], self._ctx(row)) for row in rows]
        values = [_hashable_for_distinct(v) if call.distinct else v
                  for v in values]
        return aggregate(call.name, values, call.distinct)


def _hashable_for_distinct(value: object) -> object:
    # aggregate() deduplicates with list membership, so unhashable values
    # are fine as-is; this hook exists for symmetry/future optimisation
    return value


class _InvertedKey:
    """Wrapper inverting comparison order, for ORDER BY ... DESC."""

    __slots__ = ("key",)

    def __init__(self, key: object) -> None:
        self.key = key

    def __lt__(self, other: "_InvertedKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _InvertedKey) and self.key == other.key


@lru_cache(maxsize=512)
def _parse_cached(query_text: str) -> Query:
    """Parse with memoization (ASTs are immutable, so sharing is safe).

    Raising parses are not cached — ``lru_cache`` only stores returns.
    """
    return parse(query_text)


def execute(
    graph: PropertyGraph,
    query_text: str,
    parameters: Mapping[str, object] | None = None,
) -> QueryResult:
    """Parse and execute ``query_text`` against ``graph``."""
    with obs.span("cypher.execute") as sp:
        started = time.perf_counter()
        query = _parse_cached(query_text)
        result = Executor(graph, parameters).run(query)
        elapsed = time.perf_counter() - started
        sp.set_attribute("rows", len(result.rows))
        obs.inc("cypher.queries")
        obs.inc("cypher.rows", len(result.rows))
        obs.observe("cypher.eval_seconds", elapsed)
    return result
