"""Render a Cypher AST back to query text.

Used by the correction module (§4.4): direction fixes are applied on the
AST and the repaired query is re-rendered, exactly as a human would rewrite
the pattern while keeping the rest of the query intact.
"""

from __future__ import annotations

from repro.cypher.ast_nodes import (
    BinaryOp,
    CaseExpression,
    CreateClause,
    DeleteClause,
    ExistsExpression,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LabelPredicate,
    ListComprehension,
    ListIndex,
    ListLiteral,
    ListSlice,
    Literal,
    MapLiteral,
    MatchClause,
    MergeClause,
    NodePattern,
    OrderItem,
    Parameter,
    PathPattern,
    PatternExpression,
    ProjectionItem,
    PropertyAccess,
    Query,
    RegexMatch,
    RelPattern,
    RemoveClause,
    ReturnClause,
    SetClause,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)


def render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(render_literal(item) for item in value) + "]"
    return str(value)


def render_expression(expr: Expression) -> str:
    if isinstance(expr, Literal):
        return render_literal(expr.value)
    if isinstance(expr, Variable):
        return expr.name
    if isinstance(expr, Parameter):
        return f"${expr.name}"
    if isinstance(expr, PropertyAccess):
        return f"{render_expression(expr.subject)}.{expr.key}"
    if isinstance(expr, BinaryOp):
        left = render_expression(expr.left)
        right = render_expression(expr.right)
        if expr.op in ("AND", "OR", "XOR"):
            left = _maybe_paren(expr.left, left)
            right = _maybe_paren(expr.right, right)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, UnaryOp):
        operand = render_expression(expr.operand)
        if expr.op == "NOT":
            return f"NOT {_maybe_paren(expr.operand, operand)}"
        return f"{expr.op}{operand}"
    if isinstance(expr, FunctionCall):
        name = _FUNCTION_CASE.get(expr.name, expr.name)
        if expr.star:
            return f"{name}(*)"
        prefix = "DISTINCT " if expr.distinct else ""
        args = ", ".join(render_expression(arg) for arg in expr.args)
        return f"{name}({prefix}{args})"
    if isinstance(expr, ListLiteral):
        return "[" + ", ".join(render_expression(i) for i in expr.items) + "]"
    if isinstance(expr, MapLiteral):
        body = ", ".join(
            f"{key}: {render_expression(value)}" for key, value in expr.entries
        )
        return "{" + body + "}"
    if isinstance(expr, IsNull):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{render_expression(expr.operand)} {middle}"
    if isinstance(expr, InList):
        return (
            f"{render_expression(expr.needle)} IN "
            f"{render_expression(expr.haystack)}"
        )
    if isinstance(expr, StringPredicate):
        return (
            f"{render_expression(expr.left)} {expr.kind} "
            f"{render_expression(expr.right)}"
        )
    if isinstance(expr, RegexMatch):
        return (
            f"{render_expression(expr.left)} =~ "
            f"{render_expression(expr.right)}"
        )
    if isinstance(expr, CaseExpression):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(render_expression(expr.operand))
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {render_expression(condition)} "
                f"THEN {render_expression(result)}"
            )
        if expr.default is not None:
            parts.append(f"ELSE {render_expression(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, LabelPredicate):
        labels = "".join(f":{label}" for label in expr.labels)
        return f"{render_expression(expr.subject)}{labels}"
    if isinstance(expr, ListIndex):
        return (
            f"{render_expression(expr.subject)}"
            f"[{render_expression(expr.index)}]"
        )
    if isinstance(expr, ListSlice):
        start = render_expression(expr.start) if expr.start else ""
        end = render_expression(expr.end) if expr.end else ""
        return f"{render_expression(expr.subject)}[{start}..{end}]"
    if isinstance(expr, ListComprehension):
        body = f"{expr.variable} IN {render_expression(expr.source)}"
        if expr.predicate is not None:
            body += f" WHERE {render_expression(expr.predicate)}"
        if expr.projection is not None:
            body += f" | {render_expression(expr.projection)}"
        return f"[{body}]"
    if isinstance(expr, PatternExpression):
        return render_path_pattern(expr.pattern)
    if isinstance(expr, ExistsExpression):
        return f"exists({render_expression(expr.operand)})"
    raise TypeError(f"cannot render {type(expr).__name__}")


_FUNCTION_CASE = {
    "tostring": "toString", "tointeger": "toInteger", "tofloat": "toFloat",
    "toboolean": "toBoolean", "toupper": "toUpper", "tolower": "toLower",
    "startnode": "startNode", "endnode": "endNode",
}


def _maybe_paren(expr: Expression, text: str) -> str:
    if isinstance(expr, BinaryOp) and expr.op in ("AND", "OR", "XOR"):
        return f"({text})"
    return text


def render_node_pattern(node: NodePattern) -> str:
    body = node.variable or ""
    body += "".join(f":{label}" for label in node.labels)
    if node.properties:
        entries = ", ".join(
            f"{key}: {render_expression(value)}"
            for key, value in node.properties
        )
        body += (" " if body else "") + "{" + entries + "}"
    return f"({body})"


def render_rel_pattern(rel: RelPattern) -> str:
    detail = rel.variable or ""
    if rel.types:
        detail += ":" + "|".join(rel.types)
    if rel.is_variable_length:
        if rel.min_hops == rel.max_hops:
            detail += f"*{rel.min_hops}"
        else:
            detail += f"*{rel.min_hops}..{rel.max_hops}"
    if rel.properties:
        entries = ", ".join(
            f"{key}: {render_expression(value)}"
            for key, value in rel.properties
        )
        detail += " {" + entries + "}"
    bracket = f"[{detail}]" if detail else ""
    if rel.direction == "out":
        return f"-{bracket}->"
    if rel.direction == "in":
        return f"<-{bracket}-"
    return f"-{bracket}-"


def render_path_pattern(pattern: PathPattern) -> str:
    parts: list[str] = []
    for element in pattern.elements:
        if isinstance(element, NodePattern):
            parts.append(render_node_pattern(element))
        else:
            parts.append(render_rel_pattern(element))
    text = "".join(parts)
    if pattern.variable:
        return f"{pattern.variable} = {text}"
    return text


def _render_projection(
    items: tuple[ProjectionItem, ...], distinct: bool, star: bool
) -> str:
    prefix = "DISTINCT " if distinct else ""
    if star:
        return prefix + "*"
    rendered = []
    for item in items:
        text = render_expression(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        rendered.append(text)
    return prefix + ", ".join(rendered)


def _render_order_skip_limit(
    order_by: tuple[OrderItem, ...], skip, limit
) -> str:
    parts = []
    if order_by:
        rendered = ", ".join(
            render_expression(item.expression)
            + (" DESC" if item.descending else "")
            for item in order_by
        )
        parts.append(f" ORDER BY {rendered}")
    if skip is not None:
        parts.append(f" SKIP {render_expression(skip)}")
    if limit is not None:
        parts.append(f" LIMIT {render_expression(limit)}")
    return "".join(parts)


def render_query(query: Query) -> str:
    """Render a query AST to a single-line Cypher string."""
    if isinstance(query, UnionQuery):
        joiner = " UNION ALL " if query.all else " UNION "
        return joiner.join(render_query(sub) for sub in query.queries)

    assert isinstance(query, SingleQuery)
    parts: list[str] = []
    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            keyword = "OPTIONAL MATCH" if clause.optional else "MATCH"
            patterns = ", ".join(
                render_path_pattern(p) for p in clause.patterns
            )
            text = f"{keyword} {patterns}"
            if clause.where is not None:
                text += f" WHERE {render_expression(clause.where)}"
            parts.append(text)
        elif isinstance(clause, UnwindClause):
            parts.append(
                f"UNWIND {render_expression(clause.expression)} "
                f"AS {clause.alias}"
            )
        elif isinstance(clause, WithClause):
            text = "WITH " + _render_projection(
                clause.items, clause.distinct, clause.star
            )
            text += _render_order_skip_limit(
                clause.order_by, clause.skip, clause.limit
            )
            if clause.where is not None:
                text += f" WHERE {render_expression(clause.where)}"
            parts.append(text)
        elif isinstance(clause, CreateClause):
            patterns = ", ".join(
                render_path_pattern(p) for p in clause.patterns
            )
            parts.append(f"CREATE {patterns}")
        elif isinstance(clause, MergeClause):
            parts.append(f"MERGE {render_path_pattern(clause.pattern)}")
        elif isinstance(clause, SetClause):
            rendered = []
            for item in clause.items:
                if item.key is not None:
                    rendered.append(
                        f"{item.target}.{item.key} = "
                        f"{render_expression(item.value)}"
                    )
                elif item.replace:
                    rendered.append(
                        f"{item.target} = {render_expression(item.value)}"
                    )
                else:
                    rendered.append(
                        f"{item.target} += {render_expression(item.value)}"
                    )
            parts.append("SET " + ", ".join(rendered))
        elif isinstance(clause, RemoveClause):
            rendered = ", ".join(
                f"{item.target}.{item.key}" for item in clause.items
            )
            parts.append(f"REMOVE {rendered}")
        elif isinstance(clause, DeleteClause):
            keyword = "DETACH DELETE" if clause.detach else "DELETE"
            rendered = ", ".join(
                render_expression(e) for e in clause.expressions
            )
            parts.append(f"{keyword} {rendered}")
        elif isinstance(clause, ReturnClause):
            text = "RETURN " + _render_projection(
                clause.items, clause.distinct, clause.star
            )
            text += _render_order_skip_limit(
                clause.order_by, clause.skip, clause.limit
            )
            parts.append(text)
    return " ".join(parts)
