"""CSR frontier expansion for planned MATCH clauses.

The legacy matcher in :mod:`repro.cypher.matcher` walks Python objects:
every expansion fetches a node's edge dict, filters by relationship type
edge-by-edge, and re-checks labels through ``Node.labels`` sets.  This
module runs the same depth-first search against the int-id columnar
snapshot (:class:`repro.graph.columnar.ColumnarGraph`) instead:

* frontiers expand over contiguous CSR adjacency slices — a single-type
  relationship reads exactly its typed segment, so edges of other types
  are never touched (``MatchStats.visits`` measures this);
* label filtering compares interned label codes;
* pushed-down WHERE prefilters of the shape ``var.key = <literal>`` /
  ``var.key IS [NOT] NULL`` are evaluated against the property columns
  *before* a bindings dict is materialized — only the order-preserved
  remainder goes through the general evaluator;
* relationship uniqueness is a bitset keyed by dense edge id.

Row-for-row equivalence with the legacy matcher is the contract (the
planner only routes clauses here when every pattern is free of
variable-length relationships): candidate enumeration order, per-edge
check order, and error semantics all mirror ``matcher`` exactly — the
hypothesis suite in ``tests/test_columnar_equivalence.py`` holds the two
paths to identical rows and identical exceptions.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.cypher.ast_nodes import (
    BinaryOp,
    Expression,
    IsNull,
    Literal,
    NodePattern,
    PathPattern,
    PropertyAccess,
    RelPattern,
    Variable,
)
from repro.cypher.errors import CypherError, CypherSemanticError
from repro.cypher.evaluator import EvalContext, _equals, evaluate
from repro.cypher.matcher import (
    MatchStats,
    Path,
    SeedSpec,
    _checks_pass,
    _edge_satisfies,
    _node_satisfies,
    _properties_match,
)
from repro.graph.columnar import ColumnarGraph
from repro.graph.model import Edge, Node
from repro.graph.store import PropertyGraph, property_index_key

__all__ = ["match_clause_csr"]

#: a column prefilter: ("eq", key, literal) or ("null", key, negated)
_ColumnTest = tuple[str, str, object]


def _column_test(
    predicate: Expression, variable: str | None
) -> _ColumnTest | None:
    """Compile one pushed conjunct into a column test, if it only reads
    ``variable``'s own properties against constants (such a test cannot
    raise and cannot see any other binding)."""
    if variable is None:
        return None
    if isinstance(predicate, IsNull):
        operand = predicate.operand
        if (
            isinstance(operand, PropertyAccess)
            and isinstance(operand.subject, Variable)
            and operand.subject.name == variable
        ):
            return ("null", operand.key, predicate.negated)
        return None
    if isinstance(predicate, BinaryOp) and predicate.op == "=":
        sides = (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        )
        for prop, literal in sides:
            if (
                isinstance(prop, PropertyAccess)
                and isinstance(prop.subject, Variable)
                and prop.subject.name == variable
                and isinstance(literal, Literal)
            ):
                return ("eq", prop.key, literal.value)
    return None


def _column_prefix(
    predicates: Sequence[Expression] | None, variable: str | None
) -> tuple[tuple[_ColumnTest, ...], tuple[Expression, ...]]:
    """Split pushed conjuncts into a *leading* run of column tests plus
    the order-preserved remainder.

    Only a prefix may be hoisted: ``all()`` evaluates conjuncts in order
    and a later conjunct may raise, so skipping ahead of one would
    change error semantics.
    """
    if not predicates:
        return (), ()
    fast: list[_ColumnTest] = []
    remainder = list(predicates)
    while remainder:
        test = _column_test(remainder[0], variable)
        if test is None:
            break
        fast.append(test)
        remainder.pop(0)
    return tuple(fast), tuple(remainder)


def _passes_columns(
    snapshot: ColumnarGraph, nid: int, tests: tuple[_ColumnTest, ...]
) -> bool:
    for kind, key, payload in tests:
        value = snapshot.node_prop(nid, key)
        if kind == "eq":
            if _equals(value, payload) is not True:
                return False
        else:  # "null": payload is the IS NOT NULL flag
            if (value is None) == payload:
                return False
    return True


def _prepare_pattern(
    snapshot: ColumnarGraph,
    pattern: PathPattern,
    checks: Mapping[int, Sequence[Expression]],
) -> dict[int, object]:
    """Per-element int-domain metadata: the typed-slice code for each
    relationship, and (label codes, column prefilters, residual checks)
    for each node element."""
    meta: dict[int, object] = {}
    for index, element in enumerate(pattern.elements):
        if isinstance(element, RelPattern):
            meta[index] = (
                snapshot.single_type_code(element.types[0])
                if len(element.types) == 1
                else None
            )
        else:
            codes = tuple(
                snapshot.label_code.get(label, -1)
                for label in element.labels
            )
            fast, rest = _column_prefix(
                checks.get(index), element.variable
            )
            meta[index] = (codes, fast, rest)
    return meta


def _seed_nids(
    graph: PropertyGraph,
    snapshot: ColumnarGraph,
    pattern: NodePattern,
    seed: SeedSpec | None,
    bindings: Mapping[str, object],
    parameters: Mapping[str, object] | None,
) -> Iterator[int]:
    """Dense-id candidate source mirroring ``matcher._seed_source``."""
    if seed is not None and seed.kind == "index":
        ctx = EvalContext(
            graph=graph, parameters=parameters or {},
            bindings=dict(bindings),
        )
        try:
            value = evaluate(seed.value, ctx)
        except CypherError:
            value = None  # unevaluable now; fall back to the label scan
        if value is not None:
            index_key = property_index_key(value)
            if index_key is not None:
                return snapshot.index_candidates(
                    seed.label, seed.key, index_key
                )
        return snapshot.label_candidates(seed.label)
    if seed is not None and seed.kind == "label":
        return snapshot.label_candidates(seed.label)
    if seed is not None and seed.kind == "scan":
        return snapshot.all_candidates()
    if pattern.labels:
        return snapshot.label_candidates(pattern.labels[0])
    return snapshot.all_candidates()


def _adjacent(
    snapshot: ColumnarGraph,
    nid: int,
    rel: RelPattern,
    rel_tc: int | None,
    stats: MatchStats | None,
) -> Iterator[tuple[int, int]]:
    """(edge, neighbour) dense-id frontier for one relationship step.

    Each direction is one contiguous slice fetch; ``visits`` counts the
    entries actually touched (for a typed slice, only matching edges —
    the legacy path pays for the whole row).
    """
    if nid < 0:
        return
    if rel.direction in ("out", "any"):
        if stats is not None:
            stats.csr_frontiers += 1
        for pair in snapshot.adjacency(nid, rel_tc, True):
            if stats is not None:
                stats.visits += 1
            yield pair
    if rel.direction in ("in", "any"):
        if stats is not None:
            stats.csr_frontiers += 1
        for pair in snapshot.adjacency(nid, rel_tc, False):
            if stats is not None:
                stats.visits += 1
            yield pair


def _walk(
    graph: PropertyGraph,
    snapshot: ColumnarGraph,
    elements: Sequence[object],
    index: int,
    nid: int,
    bindings: dict[str, object],
    used: bytearray,
    trail: list[object],
    checks: Mapping[int, Sequence[Expression]],
    meta: Mapping[int, object],
    parameters: Mapping[str, object] | None,
    stats: MatchStats | None,
) -> Iterator[tuple[dict[str, object], list[object]]]:
    """DFS over the remaining (rel, node) element pairs, in dense ids.

    Check order per edge mirrors ``matcher._match_path_elements``
    exactly: uniqueness, relationship filters, rel-bound identity, node
    filters, node-bound identity, then pushed checks (column prefix
    first — it is the leading run of the same conjunct list).
    """
    if index >= len(elements):
        yield bindings, trail
        return

    rel: RelPattern = elements[index]          # type: ignore[assignment]
    next_pattern: NodePattern = elements[index + 1]  # type: ignore
    rel_tc = meta[index]
    codes, fast, rest = meta[index + 1]
    rel_bound = rel.variable is not None and rel.variable in bindings
    node_bound = (
        next_pattern.variable is not None
        and next_pattern.variable in bindings
    )

    for eid, nbr in _adjacent(snapshot, nid, rel, rel_tc, stats):
        if stats is not None:
            stats.expansions += 1
        if used[eid >> 3] & (1 << (eid & 7)):
            continue
        edge = snapshot.edge_objs[eid]
        if not _edge_satisfies(graph, edge, rel, bindings):
            continue
        if rel_bound:
            bound = bindings[rel.variable]
            if not isinstance(bound, Edge) or bound.id != edge.id:
                continue
        if codes and not snapshot.has_labels(nbr, codes):
            continue
        neighbour = snapshot.node_objs[nbr]
        if next_pattern.properties and not _properties_match(
            graph, neighbour, next_pattern.properties, bindings
        ):
            continue
        if node_bound:
            bound = bindings[next_pattern.variable]
            if not isinstance(bound, Node) or bound.id != neighbour.id:
                continue
        if fast and not _passes_columns(snapshot, nbr, fast):
            continue
        new_bindings = dict(bindings)
        if rel.variable:
            new_bindings[rel.variable] = edge
        if next_pattern.variable:
            new_bindings[next_pattern.variable] = neighbour
        if rest and not _checks_pass(rest, graph, new_bindings, parameters):
            continue
        used[eid >> 3] |= 1 << (eid & 7)
        try:
            yield from _walk(
                graph, snapshot, elements, index + 2, nbr,
                new_bindings, used, trail + [edge, neighbour],
                checks, meta, parameters, stats,
            )
        finally:
            used[eid >> 3] &= 0xFF ^ (1 << (eid & 7))


def _match_path_csr(
    graph: PropertyGraph,
    snapshot: ColumnarGraph,
    pattern: PathPattern,
    bindings: dict[str, object],
    used: bytearray,
    seed: SeedSpec | None,
    checks: Mapping[int, Sequence[Expression]],
    meta: Mapping[int, object],
    parameters: Mapping[str, object] | None,
    stats: MatchStats | None,
) -> Iterator[dict[str, object]]:
    """All bindings extensions matching one path (cf. ``match_path``)."""
    if not pattern.elements:
        return
    first = pattern.elements[0]
    if not isinstance(first, NodePattern):
        raise CypherSemanticError("path pattern must start with a node")

    def finish(
        start_bindings: dict[str, object], nid: int, start: Node
    ) -> Iterator[dict[str, object]]:
        for final_bindings, trail in _walk(
            graph, snapshot, pattern.elements, 1, nid,
            start_bindings, used, [start], checks, meta, parameters, stats,
        ):
            if pattern.variable:
                final_bindings = dict(final_bindings)
                final_bindings[pattern.variable] = Path(trail)
            yield final_bindings

    if first.variable is not None and first.variable in bindings:
        # a bound start may be a stale object (rebound across write
        # clauses); filters and checks must see *that* object, so the
        # columns are not consulted here — only its adjacency is,
        # resolved by id (absent ids expand to nothing, like the store)
        bound = bindings[first.variable]
        if stats is not None:
            stats.seeds += 1
        if not (
            isinstance(bound, Node)
            and _node_satisfies(graph, bound, first, bindings)
        ):
            return
        start_bindings = dict(bindings)
        start_bindings[first.variable] = bound
        if not _checks_pass(checks.get(0), graph, start_bindings, parameters):
            return
        nid = snapshot.node_index.get(bound.id, -1)
        yield from finish(start_bindings, nid, bound)
        return

    codes, fast, rest = meta[0]
    for nid in _seed_nids(
        graph, snapshot, first, seed, bindings, parameters
    ):
        if stats is not None:
            stats.seeds += 1
        if codes and not snapshot.has_labels(nid, codes):
            continue
        start = snapshot.node_objs[nid]
        if first.properties and not _properties_match(
            graph, start, first.properties, bindings
        ):
            continue
        if fast and not _passes_columns(snapshot, nid, fast):
            continue
        start_bindings = dict(bindings)
        if first.variable:
            start_bindings[first.variable] = start
        if rest and not _checks_pass(rest, graph, start_bindings, parameters):
            continue
        yield from finish(start_bindings, nid, start)


def match_clause_csr(
    graph: PropertyGraph,
    snapshot: ColumnarGraph,
    steps: Sequence[tuple],
    bindings: dict[str, object],
    *,
    parameters: Mapping[str, object] | None = None,
    stats: MatchStats | None = None,
) -> Iterator[dict[str, object]]:
    """Match one planned MATCH clause over the columnar snapshot.

    ``steps`` is the planner's (pattern, seed, checks) sequence —
    relationship uniqueness spans all of them, tracked in one bitset
    keyed by dense edge id.  Rows are identical to
    ``matcher.match_patterns`` on the same plan.
    """
    used = bytearray((len(snapshot.edge_ids) + 7) // 8 or 1)
    prepared = [
        (pattern, seed, checks or {},
         _prepare_pattern(snapshot, pattern, checks or {}))
        for pattern, seed, checks in steps
    ]

    def recurse(
        index: int, current_bindings: dict[str, object]
    ) -> Iterator[dict[str, object]]:
        if index >= len(prepared):
            yield current_bindings
            return
        pattern, seed, checks, meta = prepared[index]
        for new_bindings in _match_path_csr(
            graph, snapshot, pattern, current_bindings, used,
            seed, checks, meta, parameters, stats,
        ):
            yield from recurse(index + 1, new_bindings)

    yield from recurse(0, bindings)
