"""From-scratch interpreter for the Cypher subset used in the study.

Public surface::

    from repro.cypher import execute, parse, lint, render_query

    result = execute(graph, "MATCH (n:Person) RETURN count(*) AS c")
    result.scalar()   # -> int
"""

from repro.cypher.errors import (
    CypherError,
    CypherSemanticError,
    CypherSyntaxError,
    CypherTypeError,
    UnknownFunctionError,
)
from repro.cypher.executor import Executor, QueryResult, execute
from repro.cypher.lexer import tokenize
from repro.cypher.linter import (
    ErrorCategory,
    Linter,
    LintIssue,
    LintReport,
    lint,
    looks_like_regex,
)
from repro.cypher.parser import parse
from repro.cypher.planner import (
    PlanCache,
    QueryPlan,
    QueryPlanner,
    clear_plan_caches,
    default_planner,
    explain,
)
from repro.cypher.render import render_expression, render_query

__all__ = [
    "CypherError",
    "CypherSemanticError",
    "CypherSyntaxError",
    "CypherTypeError",
    "ErrorCategory",
    "Executor",
    "Linter",
    "LintIssue",
    "LintReport",
    "PlanCache",
    "QueryPlan",
    "QueryPlanner",
    "QueryResult",
    "UnknownFunctionError",
    "clear_plan_caches",
    "default_planner",
    "execute",
    "explain",
    "lint",
    "looks_like_regex",
    "parse",
    "render_expression",
    "render_query",
    "tokenize",
]
