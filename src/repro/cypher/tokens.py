"""Token definitions for the Cypher lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """Kinds of lexical tokens in the supported Cypher subset."""

    IDENT = auto()        # identifiers and non-reserved words
    KEYWORD = auto()      # reserved words (MATCH, WHERE, ...), upper-cased
    STRING = auto()       # 'quoted' or "quoted"
    INTEGER = auto()
    FLOAT = auto()
    # punctuation / operators
    LPAREN = auto()       # (
    RPAREN = auto()       # )
    LBRACKET = auto()     # [
    RBRACKET = auto()     # ]
    LBRACE = auto()       # {
    RBRACE = auto()       # }
    COLON = auto()        # :
    COMMA = auto()        # ,
    DOT = auto()          # .
    PIPE = auto()         # |
    PLUS = auto()         # +
    MINUS = auto()        # -
    STAR = auto()         # *
    SLASH = auto()        # /
    PERCENT = auto()      # %
    CARET = auto()        # ^
    EQ = auto()           # =
    NEQ = auto()          # <>
    LT = auto()           # <
    LTE = auto()          # <=
    GT = auto()           # >
    GTE = auto()          # >=
    REGEX_MATCH = auto()  # =~
    ARROW_RIGHT = auto()  # ->
    ARROW_LEFT = auto()   # <-
    DASH = auto()         # -, disambiguated from MINUS by the parser
    DOLLAR = auto()       # $ (parameters)
    EOF = auto()


#: Reserved words.  Keyword tokens keep their original text (labels like
#: ``:Match`` must not lose their case); ``Token.is_keyword`` compares
#: case-insensitively, as Cypher requires.
KEYWORDS = frozenset({
    "MATCH", "OPTIONAL", "WHERE", "WITH", "RETURN", "AS", "AND", "OR",
    "XOR", "NOT", "IN", "IS", "NULL", "TRUE", "FALSE", "DISTINCT",
    "ORDER", "BY", "ASC", "ASCENDING", "DESC", "DESCENDING", "SKIP",
    "LIMIT", "UNWIND", "STARTS", "ENDS", "CONTAINS", "EXISTS", "CASE",
    "WHEN", "THEN", "ELSE", "END", "UNION", "ALL", "CREATE", "MERGE",
    "DELETE", "SET", "REMOVE", "CALL", "YIELD", "DETACH",
})


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    text: str
    position: int

    @property
    def value(self) -> str:
        return self.text

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text.upper() in words

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r}@{self.position})"
