"""Graph pattern matching for MATCH clauses.

Implements Cypher's matching semantics for the supported subset:

* label and property-map filters on nodes and relationships;
* all three directions (``->``, ``<-``, undirected);
* simple variable-length relationships ``*m..n``;
* *relationship uniqueness* within a single MATCH clause (the same edge
  cannot be traversed twice, Cypher's "relationship isomorphism");
* re-use of already-bound variables (joins across patterns and clauses).

Matching is a depth-first search seeded from the cheapest available index
(bound variable, then label index, then full scan).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.cypher.ast_nodes import NodePattern, PathPattern, RelPattern
from repro.cypher.errors import CypherSemanticError
from repro.graph.model import Edge, Node
from repro.graph.store import PropertyGraph


class Path:
    """A matched path: alternating nodes and edges."""

    __slots__ = ("elements",)

    def __init__(self, elements: Sequence[object]) -> None:
        self.elements = tuple(elements)

    def nodes(self) -> list[Node]:
        return [e for e in self.elements if isinstance(e, Node)]

    def relationships(self) -> list[Edge]:
        return [e for e in self.elements if isinstance(e, Edge)]

    def __len__(self) -> int:
        return len(self.relationships())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and [
            getattr(e, "id", e) for e in self.elements
        ] == [getattr(e, "id", e) for e in other.elements]

    def __hash__(self) -> int:
        return hash(tuple(getattr(e, "id", e) for e in self.elements))

    def __repr__(self) -> str:
        return f"Path(len={len(self)})"


def _node_satisfies(
    graph: PropertyGraph,
    node: Node,
    pattern: NodePattern,
    bindings: Mapping[str, object],
) -> bool:
    if any(label not in node.labels for label in pattern.labels):
        return False
    return _properties_match(graph, node, pattern.properties, bindings)


def _edge_satisfies(
    graph: PropertyGraph,
    edge: Edge,
    pattern: RelPattern,
    bindings: Mapping[str, object],
) -> bool:
    if pattern.types and edge.label not in pattern.types:
        return False
    return _properties_match(graph, edge, pattern.properties, bindings)


def _properties_match(
    graph: PropertyGraph,
    element: Node | Edge,
    property_filters: tuple,
    bindings: Mapping[str, object],
) -> bool:
    if not property_filters:
        return True
    # evaluated lazily to avoid a circular import
    from repro.cypher.evaluator import EvalContext, _equals, evaluate

    ctx = EvalContext(graph=graph, bindings=dict(bindings))
    for key, value_expr in property_filters:
        expected = evaluate(value_expr, ctx)
        if _equals(element.properties.get(key), expected) is not True:
            return False
    return True


def _candidate_nodes(
    graph: PropertyGraph,
    pattern: NodePattern,
    bindings: Mapping[str, object],
) -> Iterator[Node]:
    """Candidates for a node pattern, using the best index available."""
    if pattern.variable and pattern.variable in bindings:
        bound = bindings[pattern.variable]
        if isinstance(bound, Node) and _node_satisfies(
            graph, bound, pattern, bindings
        ):
            yield bound
        return
    if pattern.labels:
        source = graph.nodes(label=pattern.labels[0])
    else:
        source = graph.nodes()
    for node in source:
        if _node_satisfies(graph, node, pattern, bindings):
            yield node


def _expand(
    graph: PropertyGraph,
    node: Node,
    rel: RelPattern,
) -> Iterator[tuple[Edge, Node]]:
    """Edges leaving ``node`` that satisfy ``rel``'s direction and type,
    paired with the node they lead to."""
    label_filter = rel.types[0] if len(rel.types) == 1 else None
    if rel.direction in ("out", "any"):
        for edge in graph.out_edges(node.id, label=label_filter):
            yield edge, graph.node(edge.dst)
    if rel.direction in ("in", "any"):
        for edge in graph.in_edges(node.id, label=label_filter):
            yield edge, graph.node(edge.src)


def _match_path_elements(
    graph: PropertyGraph,
    elements: Sequence[object],
    index: int,
    current: Node,
    bindings: dict[str, object],
    used_edges: set[str],
    trail: list[object],
) -> Iterator[tuple[dict[str, object], set[str], list[object]]]:
    """Recursive DFS over one path's remaining (rel, node) element pairs."""
    if index >= len(elements):
        yield bindings, used_edges, trail
        return

    rel: RelPattern = elements[index]          # type: ignore[assignment]
    next_node_pattern: NodePattern = elements[index + 1]  # type: ignore

    if not rel.is_variable_length:
        for edge, neighbour in _expand(graph, current, rel):
            if edge.id in used_edges:
                continue
            if not _edge_satisfies(graph, edge, rel, bindings):
                continue
            if rel.variable and rel.variable in bindings:
                bound = bindings[rel.variable]
                if not isinstance(bound, Edge) or bound.id != edge.id:
                    continue
            if not _node_satisfies(graph, neighbour, next_node_pattern, bindings):
                continue
            if (
                next_node_pattern.variable
                and next_node_pattern.variable in bindings
            ):
                bound = bindings[next_node_pattern.variable]
                if not isinstance(bound, Node) or bound.id != neighbour.id:
                    continue
            new_bindings = dict(bindings)
            if rel.variable:
                new_bindings[rel.variable] = edge
            if next_node_pattern.variable:
                new_bindings[next_node_pattern.variable] = neighbour
            yield from _match_path_elements(
                graph, elements, index + 2, neighbour,
                new_bindings, used_edges | {edge.id},
                trail + [edge, neighbour],
            )
        return

    # variable-length expansion: DFS up to max_hops
    def walk(
        node: Node,
        hops: int,
        edges_so_far: list[Edge],
        used: set[str],
    ) -> Iterator[tuple[list[Edge], Node, set[str]]]:
        if hops >= rel.min_hops:
            yield edges_so_far, node, used
        if hops >= rel.max_hops:
            return
        for edge, neighbour in _expand(graph, node, rel):
            if edge.id in used:
                continue
            if not _edge_satisfies(graph, edge, rel, bindings):
                continue
            yield from walk(
                neighbour, hops + 1, edges_so_far + [edge], used | {edge.id}
            )

    for edges, endpoint, used in walk(current, 0, [], used_edges):
        if not _node_satisfies(graph, endpoint, next_node_pattern, bindings):
            continue
        if (
            next_node_pattern.variable
            and next_node_pattern.variable in bindings
        ):
            bound = bindings[next_node_pattern.variable]
            if not isinstance(bound, Node) or bound.id != endpoint.id:
                continue
        new_bindings = dict(bindings)
        if rel.variable:
            new_bindings[rel.variable] = list(edges)
        if next_node_pattern.variable:
            new_bindings[next_node_pattern.variable] = endpoint
        new_trail = list(trail)
        for edge in edges:
            new_trail.append(edge)
        new_trail.append(endpoint)
        yield from _match_path_elements(
            graph, elements, index + 2, endpoint,
            new_bindings, used, new_trail,
        )


def match_path(
    graph: PropertyGraph,
    pattern: PathPattern,
    bindings: dict[str, object],
    used_edges: set[str],
) -> Iterator[tuple[dict[str, object], set[str]]]:
    """Yield all (bindings, used_edges) extensions matching one path."""
    if not pattern.elements:
        return
    first = pattern.elements[0]
    if not isinstance(first, NodePattern):
        raise CypherSemanticError("path pattern must start with a node")
    for start in _candidate_nodes(graph, first, bindings):
        start_bindings = dict(bindings)
        if first.variable:
            start_bindings[first.variable] = start
        for final_bindings, final_used, trail in _match_path_elements(
            graph, pattern.elements, 1, start,
            start_bindings, set(used_edges), [start],
        ):
            if pattern.variable:
                final_bindings = dict(final_bindings)
                final_bindings[pattern.variable] = Path(trail)
            yield final_bindings, final_used


def match_patterns(
    graph: PropertyGraph,
    patterns: Sequence[PathPattern],
    bindings: dict[str, object],
) -> Iterator[dict[str, object]]:
    """Match a comma-separated pattern list (one MATCH clause).

    Relationship uniqueness applies across all patterns of the clause.
    """

    def recurse(
        index: int,
        current_bindings: dict[str, object],
        used_edges: set[str],
    ) -> Iterator[dict[str, object]]:
        if index >= len(patterns):
            yield current_bindings
            return
        for new_bindings, new_used in match_path(
            graph, patterns[index], current_bindings, used_edges
        ):
            yield from recurse(index + 1, new_bindings, new_used)

    yield from recurse(0, bindings, set())


def pattern_exists(
    graph: PropertyGraph,
    pattern: PathPattern,
    bindings: Mapping[str, object],
) -> bool:
    """True if ``pattern`` has at least one match extending ``bindings``."""
    for _match in match_path(graph, pattern, dict(bindings), set()):
        return True
    return False
