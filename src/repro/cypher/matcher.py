"""Graph pattern matching for MATCH clauses.

Implements Cypher's matching semantics for the supported subset:

* label and property-map filters on nodes and relationships;
* all three directions (``->``, ``<-``, undirected);
* simple variable-length relationships ``*m..n``;
* *relationship uniqueness* within a single MATCH clause (the same edge
  cannot be traversed twice, Cypher's "relationship isomorphism");
* re-use of already-bound variables (joins across patterns and clauses).

Matching is a depth-first search.  By default it seeds from the cheapest
statically-known index (bound variable, then label index, then full
scan); the cost-based planner in :mod:`repro.cypher.planner` can instead
supply a :class:`SeedSpec` per pattern (property-index lookups, cheapest
label) plus per-position predicate *checks* — WHERE conjuncts pushed
down to the earliest DFS step where their variables are bound.

Relationship uniqueness is enforced with a single mutable set of used
edge ids threaded through the DFS (O(1) membership, add on descent,
discard on backtrack) rather than copying the set at every step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.cypher.ast_nodes import (
    Expression,
    NodePattern,
    PathPattern,
    RelPattern,
)
from repro.cypher.errors import CypherError, CypherSemanticError
from repro.graph.model import Edge, Node
from repro.graph.store import PropertyGraph, property_index_key

#: ``checks`` maps a node-element index (0, 2, 4, ...) to the pushed-down
#: predicates to evaluate once that element (and its preceding
#: relationship) is bound
Checks = Mapping[int, Sequence[Expression]]


@dataclass(frozen=True)
class SeedSpec:
    """How to enumerate candidate start nodes for one path pattern.

    ``kind`` is ``"bound"`` (variable already bound), ``"index"``
    (property-index lookup on ``(label, key) = value``), ``"label"``
    (label-index scan, not necessarily the pattern's first label) or
    ``"scan"`` (all nodes).  Seeds are advisory: the matcher re-verifies
    every candidate against the full pattern, and an index seed whose
    value turns out unindexable (null, list) or unevaluable falls back
    to the label scan, so a stale or wrong seed can never change results.
    """

    kind: str
    label: str | None = None
    key: str | None = None
    value: Expression | None = None


class MatchStats:
    """Mutable node-expansion counters for one match run.

    ``expansions`` (pairs surviving the relationship-type filter) is
    identical between the legacy and CSR paths by construction;
    ``visits`` (adjacency entries touched *before* type filtering) is
    where the CSR typed slices win, and is the A/B benchmark metric.
    """

    __slots__ = ("seeds", "expansions", "visits", "csr_frontiers")

    def __init__(self) -> None:
        self.seeds = 0          # candidate start nodes enumerated
        self.expansions = 0     # (edge, neighbour) pairs considered
        self.visits = 0         # adjacency entries touched pre-filter
        self.csr_frontiers = 0  # contiguous CSR slices fetched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchStats(seeds={self.seeds}, expansions={self.expansions}, "
            f"visits={self.visits}, csr_frontiers={self.csr_frontiers})"
        )


class Path:
    """A matched path: alternating nodes and edges."""

    __slots__ = ("elements",)

    def __init__(self, elements: Sequence[object]) -> None:
        self.elements = tuple(elements)

    def nodes(self) -> list[Node]:
        return [e for e in self.elements if isinstance(e, Node)]

    def relationships(self) -> list[Edge]:
        return [e for e in self.elements if isinstance(e, Edge)]

    def __len__(self) -> int:
        return len(self.relationships())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and [
            getattr(e, "id", e) for e in self.elements
        ] == [getattr(e, "id", e) for e in other.elements]

    def __hash__(self) -> int:
        return hash(tuple(getattr(e, "id", e) for e in self.elements))

    def __repr__(self) -> str:
        return f"Path(len={len(self)})"


def _node_satisfies(
    graph: PropertyGraph,
    node: Node,
    pattern: NodePattern,
    bindings: Mapping[str, object],
) -> bool:
    if any(label not in node.labels for label in pattern.labels):
        return False
    return _properties_match(graph, node, pattern.properties, bindings)


def _edge_satisfies(
    graph: PropertyGraph,
    edge: Edge,
    pattern: RelPattern,
    bindings: Mapping[str, object],
) -> bool:
    if pattern.types and edge.label not in pattern.types:
        return False
    return _properties_match(graph, edge, pattern.properties, bindings)


def _properties_match(
    graph: PropertyGraph,
    element: Node | Edge,
    property_filters: tuple,
    bindings: Mapping[str, object],
) -> bool:
    if not property_filters:
        return True
    # evaluated lazily to avoid a circular import
    from repro.cypher.evaluator import EvalContext, _equals, evaluate

    ctx = EvalContext(graph=graph, bindings=dict(bindings))
    for key, value_expr in property_filters:
        expected = evaluate(value_expr, ctx)
        if _equals(element.properties.get(key), expected) is not True:
            return False
    return True


def _checks_pass(
    predicates: Sequence[Expression] | None,
    graph: PropertyGraph,
    bindings: Mapping[str, object],
    parameters: Mapping[str, object] | None,
) -> bool:
    """Evaluate pushed-down conjuncts; all must be exactly True.

    The planner only pushes conjuncts that evaluate to a boolean or
    null, so ``is True`` here matches the ternary semantics the full
    WHERE would have applied after matching.
    """
    if not predicates:
        return True
    from repro.cypher.evaluator import EvalContext, evaluate

    ctx = EvalContext(
        graph=graph, parameters=parameters or {}, bindings=dict(bindings)
    )
    return all(evaluate(pred, ctx) is True for pred in predicates)


def _seed_source(
    graph: PropertyGraph,
    pattern: NodePattern,
    seed: SeedSpec | None,
    bindings: Mapping[str, object],
    parameters: Mapping[str, object] | None,
) -> Iterator[Node]:
    """The raw candidate-node source chosen by the seed spec (candidates
    are still verified with :func:`_node_satisfies` afterwards)."""
    if seed is not None and seed.kind == "index":
        from repro.cypher.evaluator import EvalContext, evaluate

        ctx = EvalContext(
            graph=graph, parameters=parameters or {},
            bindings=dict(bindings),
        )
        try:
            value = evaluate(seed.value, ctx)
        except CypherError:
            value = None  # unevaluable now; fall back to the label scan
        if value is not None and property_index_key(value) is not None:
            return graph.nodes_where(seed.label, seed.key, value)
        return graph.nodes(label=seed.label)
    if seed is not None and seed.kind == "label":
        return graph.nodes(label=seed.label)
    if seed is not None and seed.kind == "scan":
        return graph.nodes()
    # default: the pattern's first label index, else a full scan
    if pattern.labels:
        return graph.nodes(label=pattern.labels[0])
    return graph.nodes()


def _candidate_nodes(
    graph: PropertyGraph,
    pattern: NodePattern,
    bindings: Mapping[str, object],
    seed: SeedSpec | None = None,
    parameters: Mapping[str, object] | None = None,
    stats: MatchStats | None = None,
) -> Iterator[Node]:
    """Candidates for a node pattern, using the best index available."""
    if pattern.variable and pattern.variable in bindings:
        bound = bindings[pattern.variable]
        if stats is not None:
            stats.seeds += 1
        if isinstance(bound, Node) and _node_satisfies(
            graph, bound, pattern, bindings
        ):
            yield bound
        return
    for node in _seed_source(graph, pattern, seed, bindings, parameters):
        if stats is not None:
            stats.seeds += 1
        if _node_satisfies(graph, node, pattern, bindings):
            yield node


def _expand(
    graph: PropertyGraph,
    node: Node,
    rel: RelPattern,
    stats: MatchStats | None = None,
) -> Iterator[tuple[Edge, Node]]:
    """Edges leaving ``node`` that satisfy ``rel``'s direction and type,
    paired with the node they lead to.

    The type filter runs here, edge by edge over the full adjacency row
    — ``stats.visits`` counts every row entry touched, which is the
    honest cost this object-walking path pays and the CSR typed slices
    avoid.
    """
    label_filter = rel.types[0] if len(rel.types) == 1 else None
    if rel.direction in ("out", "any"):
        for edge in graph.out_edges(node.id):
            if stats is not None:
                stats.visits += 1
            if label_filter is not None and edge.label != label_filter:
                continue
            yield edge, graph.node(edge.dst)
    if rel.direction in ("in", "any"):
        for edge in graph.in_edges(node.id):
            if stats is not None:
                stats.visits += 1
            if label_filter is not None and edge.label != label_filter:
                continue
            yield edge, graph.node(edge.src)


def _match_path_elements(
    graph: PropertyGraph,
    elements: Sequence[object],
    index: int,
    current: Node,
    bindings: dict[str, object],
    used_edges: set[str],
    trail: list[object],
    checks: Checks,
    parameters: Mapping[str, object] | None,
    stats: MatchStats | None,
) -> Iterator[tuple[dict[str, object], set[str], list[object]]]:
    """Recursive DFS over one path's remaining (rel, node) element pairs.

    ``used_edges`` is shared and mutated in place: edges are added on
    descent and discarded on backtrack, giving O(1) uniqueness checks.
    At every yield point it holds exactly the edges of the partial match.
    """
    if index >= len(elements):
        yield bindings, used_edges, trail
        return

    rel: RelPattern = elements[index]          # type: ignore[assignment]
    next_node_pattern: NodePattern = elements[index + 1]  # type: ignore

    if not rel.is_variable_length:
        for edge, neighbour in _expand(graph, current, rel, stats):
            if stats is not None:
                stats.expansions += 1
            if edge.id in used_edges:
                continue
            if not _edge_satisfies(graph, edge, rel, bindings):
                continue
            if rel.variable and rel.variable in bindings:
                bound = bindings[rel.variable]
                if not isinstance(bound, Edge) or bound.id != edge.id:
                    continue
            if not _node_satisfies(graph, neighbour, next_node_pattern, bindings):
                continue
            if (
                next_node_pattern.variable
                and next_node_pattern.variable in bindings
            ):
                bound = bindings[next_node_pattern.variable]
                if not isinstance(bound, Node) or bound.id != neighbour.id:
                    continue
            new_bindings = dict(bindings)
            if rel.variable:
                new_bindings[rel.variable] = edge
            if next_node_pattern.variable:
                new_bindings[next_node_pattern.variable] = neighbour
            if not _checks_pass(
                checks.get(index + 1), graph, new_bindings, parameters
            ):
                continue
            used_edges.add(edge.id)
            try:
                yield from _match_path_elements(
                    graph, elements, index + 2, neighbour,
                    new_bindings, used_edges,
                    trail + [edge, neighbour],
                    checks, parameters, stats,
                )
            finally:
                used_edges.discard(edge.id)
        return

    # variable-length expansion: DFS up to max_hops, sharing the same
    # mutable used-edge set (its edges are held while descending)
    def walk(
        node: Node,
        hops: int,
        edges_so_far: list[Edge],
    ) -> Iterator[tuple[list[Edge], Node]]:
        if hops >= rel.min_hops:
            yield edges_so_far, node
        if hops >= rel.max_hops:
            return
        for edge, neighbour in _expand(graph, node, rel, stats):
            if stats is not None:
                stats.expansions += 1
            if edge.id in used_edges:
                continue
            if not _edge_satisfies(graph, edge, rel, bindings):
                continue
            used_edges.add(edge.id)
            try:
                yield from walk(neighbour, hops + 1, edges_so_far + [edge])
            finally:
                used_edges.discard(edge.id)

    for edges, endpoint in walk(current, 0, []):
        if not _node_satisfies(graph, endpoint, next_node_pattern, bindings):
            continue
        if (
            next_node_pattern.variable
            and next_node_pattern.variable in bindings
        ):
            bound = bindings[next_node_pattern.variable]
            if not isinstance(bound, Node) or bound.id != endpoint.id:
                continue
        new_bindings = dict(bindings)
        if rel.variable:
            new_bindings[rel.variable] = list(edges)
        if next_node_pattern.variable:
            new_bindings[next_node_pattern.variable] = endpoint
        if not _checks_pass(
            checks.get(index + 1), graph, new_bindings, parameters
        ):
            continue
        new_trail = list(trail)
        for edge in edges:
            new_trail.append(edge)
        new_trail.append(endpoint)
        # the walk generator is suspended here still holding its edges
        # in used_edges, which is exactly the uniqueness state the rest
        # of the path must see
        yield from _match_path_elements(
            graph, elements, index + 2, endpoint,
            new_bindings, used_edges, new_trail,
            checks, parameters, stats,
        )


def match_path(
    graph: PropertyGraph,
    pattern: PathPattern,
    bindings: dict[str, object],
    used_edges: set[str],
    *,
    seed: SeedSpec | None = None,
    checks: Checks | None = None,
    parameters: Mapping[str, object] | None = None,
    stats: MatchStats | None = None,
) -> Iterator[tuple[dict[str, object], set[str]]]:
    """Yield all (bindings, used_edges) extensions matching one path.

    ``used_edges`` is mutated in place during iteration and restored on
    exhaustion; at each yield it holds the edges of the current match.
    """
    if not pattern.elements:
        return
    first = pattern.elements[0]
    if not isinstance(first, NodePattern):
        raise CypherSemanticError("path pattern must start with a node")
    checks = checks or {}
    for start in _candidate_nodes(
        graph, first, bindings, seed, parameters, stats
    ):
        start_bindings = dict(bindings)
        if first.variable:
            start_bindings[first.variable] = start
        if not _checks_pass(checks.get(0), graph, start_bindings, parameters):
            continue
        for final_bindings, final_used, trail in _match_path_elements(
            graph, pattern.elements, 1, start,
            start_bindings, used_edges, [start],
            checks, parameters, stats,
        ):
            if pattern.variable:
                final_bindings = dict(final_bindings)
                final_bindings[pattern.variable] = Path(trail)
            yield final_bindings, final_used


def match_patterns(
    graph: PropertyGraph,
    patterns: Sequence[PathPattern],
    bindings: dict[str, object],
    *,
    plan: object | None = None,
    parameters: Mapping[str, object] | None = None,
    stats: MatchStats | None = None,
    columnar: bool = True,
) -> Iterator[dict[str, object]]:
    """Match a comma-separated pattern list (one MATCH clause).

    Relationship uniqueness applies across all patterns of the clause.
    With a ``plan`` (a :class:`repro.cypher.planner.ClausePlan` or any
    object exposing ``steps`` of (pattern, seed, checks)), the planned
    pattern order, orientations, seeds and pushed-down checks are used
    instead of the written order; ``patterns`` is then ignored.

    When the plan is marked columnar-eligible and the graph has the
    columnar core enabled, the clause runs on the CSR frontier path
    (:mod:`repro.cypher.csr_frontier`) — same rows, contiguous
    adjacency.  ``columnar=False`` forces the legacy object walk.
    """
    if plan is not None:
        steps = tuple(
            (step.pattern, step.seed, step.checks) for step in plan.steps
        )
        if (
            columnar
            and getattr(plan, "columnar", False)
            and getattr(graph, "columnar_enabled", False)
        ):
            snapshot = None
            try:
                snapshot = graph.columnar()
            except Exception:
                from repro import obs

                obs.inc("matcher.csr.fallbacks")
            if snapshot is not None:
                from repro.cypher.csr_frontier import match_clause_csr

                yield from match_clause_csr(
                    graph, snapshot, steps, bindings,
                    parameters=parameters, stats=stats,
                )
                return
    else:
        steps = tuple((pattern, None, None) for pattern in patterns)
    used_edges: set[str] = set()

    def recurse(
        index: int,
        current_bindings: dict[str, object],
    ) -> Iterator[dict[str, object]]:
        if index >= len(steps):
            yield current_bindings
            return
        pattern, seed, checks = steps[index]
        for new_bindings, _used in match_path(
            graph, pattern, current_bindings, used_edges,
            seed=seed, checks=checks, parameters=parameters, stats=stats,
        ):
            yield from recurse(index + 1, new_bindings)

    yield from recurse(0, bindings)


def pattern_exists(
    graph: PropertyGraph,
    pattern: PathPattern,
    bindings: Mapping[str, object],
) -> bool:
    """True if ``pattern`` has at least one match extending ``bindings``."""
    for _match in match_path(graph, pattern, dict(bindings), set()):
        return True
    return False
