"""Exceptions raised by the Cypher interpreter."""

from __future__ import annotations


class CypherError(Exception):
    """Base class for all Cypher-layer errors."""


class CypherSyntaxError(CypherError):
    """The query text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        location = f" at position {position}" if position is not None else ""
        super().__init__(f"{message}{location}")
        self.position = position


class CypherSemanticError(CypherError):
    """The query parsed but is not executable (unknown variable, bad
    aggregation placement, …)."""


class CypherTypeError(CypherError):
    """A runtime operation was applied to values of the wrong type."""


class UnknownFunctionError(CypherSemanticError):
    """The query calls a function the interpreter does not provide."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown function: {name}()")
        self.name = name
