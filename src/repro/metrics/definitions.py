"""Metric definitions (§4.2): support, coverage, confidence.

Adapted from AMIE's rule-ranking measures to property graphs:

* **support** — the number of elements in the graph that satisfy the
  rule ("a higher support indicates that the rule is applicable to more
  facts");
* **coverage** — support normalised "by the total number of facts for
  the relation in question" (the rule's head relation);
* **confidence** — satisfying elements over elements matching the rule's
  body conditions ("how often the rule leads to the expected outcomes").

Coverage and confidence are reported as percentages, as in Tables 2-4.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuleMetrics:
    """The three §4.2 measures for one rule."""

    support: int
    relevant: int      # facts for the head relation (coverage denominator)
    body: int          # body-condition matches (confidence denominator)

    @property
    def coverage(self) -> float:
        """Support / head-relation facts, as a percentage in [0, 100]."""
        if self.relevant <= 0:
            return 0.0
        return min(100.0, 100.0 * self.support / self.relevant)

    @property
    def confidence(self) -> float:
        """Support / body matches, as a percentage in [0, 100]."""
        if self.body <= 0:
            return 0.0
        return min(100.0, 100.0 * self.support / self.body)


@dataclass(frozen=True)
class AggregateMetrics:
    """One table cell: rule count plus averaged metrics.

    The tables report the *average* support (the "Supp%" column header is
    a typo in the paper — its values are raw counts like 12,177) and the
    average coverage/confidence across the configuration's rules.
    """

    rule_count: int
    avg_support: float
    avg_coverage: float
    avg_confidence: float


def aggregate(metrics: list[RuleMetrics]) -> AggregateMetrics:
    """Average per-rule metrics into a table cell."""
    if not metrics:
        return AggregateMetrics(
            rule_count=0, avg_support=0.0, avg_coverage=0.0,
            avg_confidence=0.0,
        )
    count = len(metrics)
    return AggregateMetrics(
        rule_count=count,
        avg_support=sum(m.support for m in metrics) / count,
        avg_coverage=sum(m.coverage for m in metrics) / count,
        avg_confidence=sum(m.confidence for m in metrics) / count,
    )
