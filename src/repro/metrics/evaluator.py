"""Metric evaluation: run a rule's query bundle on the graph.

"The metrics for a given rule were computed by executing the
corresponding Cypher query" (§4.2) — here, against the
:mod:`repro.cypher` engine.  Queries that fail at runtime (e.g. they
reference hallucinated properties in a way the engine rejects) score
zero, mirroring a rule that matches nothing.
"""

from __future__ import annotations

from repro import obs
from repro.cypher.errors import CypherError
from repro.cypher.executor import execute
from repro.graph.store import PropertyGraph
from repro.metrics.definitions import RuleMetrics
from repro.rules.translator import MetricQueries


def _count(graph: PropertyGraph, query_text: str) -> int:
    """Run a count query; non-integer or failing results count as zero."""
    try:
        value = execute(graph, query_text).scalar()
    except CypherError:
        return 0
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0
    return int(value)


def evaluate_rule(graph: PropertyGraph, queries: MetricQueries) -> RuleMetrics:
    """Compute §4.2 metrics for one rule's query bundle."""
    with obs.span("evaluate") as sp:
        metrics = RuleMetrics(
            support=_count(graph, queries.satisfy),
            relevant=_count(graph, queries.relevant),
            body=_count(graph, queries.body),
        )
        sp.set_attribute("support", metrics.support)
        sp.set_attribute("relevant", metrics.relevant)
        sp.set_attribute("body", metrics.body)
        obs.inc("metrics.rules_evaluated")
    return metrics
