"""Support / coverage / confidence — AMIE-style metrics for rules."""

from repro.metrics.definitions import (
    AggregateMetrics,
    RuleMetrics,
    aggregate,
)
from repro.metrics.evaluator import evaluate_rule

__all__ = ["AggregateMetrics", "RuleMetrics", "aggregate", "evaluate_rule"]
